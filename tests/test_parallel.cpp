// Tests for the parallel solve layer: the deterministic thread pool, the
// symbolic-reusing LDL^T refactorization, the ADMM structure cache, the
// in-place WindowProgram parameter update, and — end to end — that the
// competition game is bit-identical at any thread count and that warm
// starting does not change the equilibrium it converges to.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "dspp/window_program.hpp"
#include "game/competition.hpp"
#include "linalg/sparse_ldlt.hpp"
#include "qp/admm_solver.hpp"

namespace gp {
namespace {

// Widen the global pool before its first use: the CI box may expose a single
// hardware thread, and these tests specifically exercise multi-lane runs.
const bool kEnvReady = [] {
  setenv("GEOPLACE_THREADS", "8", /*overwrite=*/0);
  return true;
}();

using linalg::SparseLdlt;
using linalg::SparseMatrix;
using linalg::Triplet;
using linalg::Vector;

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPool, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<int> visits(1000, 0);
  pool.parallel_for(0, visits.size(), [&](std::size_t i) { ++visits[i]; });
  for (int count : visits) EXPECT_EQ(count, 1);
}

TEST(ThreadPool, HandlesEmptyAndTinyRanges) {
  ThreadPool pool(3);
  std::atomic<int> calls{0};
  pool.parallel_for(5, 5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
  pool.parallel_for(7, 9, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 2);
}

TEST(ThreadPool, ResultsBitIdenticalAcrossLaneCounts) {
  ThreadPool pool(7);
  auto compute = [&](std::size_t lanes) {
    std::vector<double> out(513, 0.0);
    pool.parallel_for(
        0, out.size(),
        [&](std::size_t i) {
          double x = static_cast<double>(i) * 0.731 + 0.1;
          for (int k = 0; k < 50; ++k) x = std::sin(x) + std::sqrt(x + 1.0);
          out[i] = x;
        },
        lanes);
    return out;
  };
  const auto one = compute(1);
  for (std::size_t lanes : {2u, 3u, 8u}) {
    const auto many = compute(lanes);
    ASSERT_EQ(many.size(), one.size());
    for (std::size_t i = 0; i < one.size(); ++i) {
      EXPECT_EQ(many[i], one[i]) << "lanes=" << lanes << " i=" << i;  // bit-exact
    }
  }
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [](std::size_t i) {
                                   if (i == 57) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool is still usable afterwards.
  std::atomic<int> calls{0};
  pool.parallel_for(0, 10, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 10);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> counts(16);
  pool.parallel_for(0, 4, [&](std::size_t outer) {
    pool.parallel_for(0, 4, [&](std::size_t inner) { ++counts[outer * 4 + inner]; });
  });
  for (auto& count : counts) EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, DefaultLanesHonorsEnvironment) {
  setenv("GEOPLACE_THREADS", "5", /*overwrite=*/1);
  EXPECT_EQ(ThreadPool::default_lanes(), 5u);
  setenv("GEOPLACE_THREADS", "not-a-number", /*overwrite=*/1);
  EXPECT_GE(ThreadPool::default_lanes(), 1u);
  setenv("GEOPLACE_THREADS", "8", /*overwrite=*/1);  // restore for later tests
}

TEST(ThreadPool, GlobalParallelForWorks) {
  std::vector<int> visits(100, 0);
  parallel_for(0, visits.size(), [&](std::size_t i) { ++visits[i]; });
  for (int count : visits) EXPECT_EQ(count, 1);
}

// ------------------------------------------------------- SparseLdlt refactor

// Upper triangle of a small quasi-definite matrix (SPD block, negative
// block), the shape of the solver's KKT systems.
SparseMatrix quasi_definite_upper(double a, double b, double c) {
  return SparseMatrix::from_triplets(
      5, 5,
      {Triplet{0, 0, 4.0 + a}, Triplet{0, 2, 1.0}, Triplet{1, 1, 3.0 + b}, Triplet{1, 3, 2.0},
       Triplet{2, 2, 5.0}, Triplet{2, 4, c}, Triplet{3, 3, -2.0}, Triplet{4, 4, -3.0}});
}

TEST(SparseLdltRefactor, MatchesFreshFactorAfterValueChange) {
  SparseLdlt cached;
  ASSERT_EQ(cached.factor(quasi_definite_upper(0.0, 0.0, 0.5)), SparseLdlt::Status::kOk);

  const SparseMatrix perturbed = quasi_definite_upper(0.7, -0.3, 1.1);
  ASSERT_EQ(cached.refactor(perturbed), SparseLdlt::Status::kOk);

  SparseLdlt fresh;
  ASSERT_EQ(fresh.factor(perturbed), SparseLdlt::Status::kOk);

  const Vector rhs{1.0, -2.0, 3.0, 0.5, -1.5};
  const Vector via_refactor = cached.solve(rhs);
  const Vector via_fresh = fresh.solve(rhs);
  ASSERT_EQ(via_refactor.size(), via_fresh.size());
  for (std::size_t i = 0; i < via_fresh.size(); ++i) {
    EXPECT_NEAR(via_refactor[i], via_fresh[i], 1e-12);
  }
}

TEST(SparseLdltRefactor, RejectsChangedPattern) {
  SparseLdlt ldlt;
  const SparseMatrix original = quasi_definite_upper(0.0, 0.0, 0.5);
  ASSERT_EQ(ldlt.factor(original), SparseLdlt::Status::kOk);

  // Same size, one extra off-diagonal entry: a different sparsity pattern.
  const SparseMatrix other = SparseMatrix::from_triplets(
      5, 5,
      {Triplet{0, 0, 4.0}, Triplet{0, 1, 0.5}, Triplet{0, 2, 1.0}, Triplet{1, 1, 3.0},
       Triplet{1, 3, 2.0}, Triplet{2, 2, 5.0}, Triplet{2, 4, 0.5}, Triplet{3, 3, -2.0},
       Triplet{4, 4, -3.0}});
  EXPECT_EQ(ldlt.refactor(other), SparseLdlt::Status::kPatternMismatch);

  // The previous factorization must remain intact and correct.
  EXPECT_EQ(ldlt.status(), SparseLdlt::Status::kOk);
  const Vector rhs{1.0, 0.0, -1.0, 2.0, 0.5};
  const Vector x = ldlt.solve(rhs);
  Vector residual = rhs;
  // full symmetric product: r = b - M x with M from the upper triangle.
  for (std::int32_t col = 0; col < original.cols(); ++col) {
    for (std::int32_t k = original.col_ptr()[static_cast<std::size_t>(col)];
         k < original.col_ptr()[static_cast<std::size_t>(col) + 1]; ++k) {
      const std::int32_t row = original.row_idx()[static_cast<std::size_t>(k)];
      const double value = original.values()[static_cast<std::size_t>(k)];
      residual[static_cast<std::size_t>(row)] -= value * x[static_cast<std::size_t>(col)];
      if (row != col) {
        residual[static_cast<std::size_t>(col)] -= value * x[static_cast<std::size_t>(row)];
      }
    }
  }
  for (double r : residual) EXPECT_NEAR(r, 0.0, 1e-10);
}

TEST(SparseLdltRefactor, RequiresPriorFactor) {
  SparseLdlt ldlt;
  EXPECT_EQ(ldlt.refactor(quasi_definite_upper(0.0, 0.0, 0.5)),
            SparseLdlt::Status::kNotFactored);
}

// ---------------------------------------------------- game-level guarantees

topology::NetworkModel small_network() {
  return topology::NetworkModel({"dc0", "dc1"}, {"an0", "an1", "an2"},
                                {{10.0, 20.0, 30.0}, {25.0, 15.0, 10.0}});
}

std::vector<game::ProviderConfig> sample_providers(std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  game::RandomProviderParams params;
  params.horizon = 3;
  std::vector<game::ProviderConfig> providers;
  const auto network = small_network();
  for (std::size_t i = 0; i < count; ++i) {
    providers.push_back(game::make_random_provider(network, params, rng));
  }
  return providers;
}

game::GameResult run_game(game::GameSettings settings, std::uint64_t seed = 11,
                          std::size_t providers = 4) {
  game::CompetitionGame game(sample_providers(providers, seed), Vector{150.0, 150.0},
                             settings);
  return game.run();
}

TEST(ParallelGame, BitIdenticalAcrossThreadCounts) {
  game::GameSettings settings;
  settings.epsilon = 0.01;
  settings.num_threads = 1;
  const game::GameResult serial = run_game(settings);

  for (std::size_t threads : {2u, 4u}) {
    settings.num_threads = threads;
    const game::GameResult parallel = run_game(settings);
    EXPECT_EQ(parallel.converged, serial.converged);
    EXPECT_EQ(parallel.iterations, serial.iterations);
    ASSERT_EQ(parallel.cost_history.size(), serial.cost_history.size());
    for (std::size_t k = 0; k < serial.cost_history.size(); ++k) {
      EXPECT_EQ(parallel.cost_history[k], serial.cost_history[k])
          << "threads=" << threads << " iteration=" << k;  // bit-exact
    }
    ASSERT_EQ(parallel.quotas.size(), serial.quotas.size());
    for (std::size_t i = 0; i < serial.quotas.size(); ++i) {
      ASSERT_EQ(parallel.quotas[i].size(), serial.quotas[i].size());
      for (std::size_t l = 0; l < serial.quotas[i].size(); ++l) {
        EXPECT_EQ(parallel.quotas[i][l], serial.quotas[i][l])
            << "threads=" << threads << " i=" << i << " l=" << l;  // bit-exact
      }
    }
  }
}

dspp::WindowInputs inputs_for(const game::ProviderConfig& provider) {
  dspp::WindowInputs inputs;
  inputs.initial_state = provider.initial_state;
  inputs.demand = provider.demand;
  inputs.price = provider.price;
  inputs.soft_demand_penalty = 5.0;
  return inputs;
}

TEST(WindowProgramUpdate, MatchesFreshConstruction) {
  const auto provider = sample_providers(1, 3).front();
  const dspp::PairIndex pairs(provider.model);

  dspp::WindowInputs first = inputs_for(provider);
  dspp::WindowProgram updated(provider.model, pairs, first);

  // New forecasts, initial state, and a quota: everything update() rewrites.
  dspp::WindowInputs second = inputs_for(provider);
  for (auto& d : second.demand) {
    for (double& value : d) value *= 1.3;
  }
  for (auto& p : second.price) {
    for (double& value : p) value += 0.25;
  }
  for (double& x : second.initial_state) x += 1.0;
  second.capacity_override = Vector{80.0, 90.0};
  updated.update(provider.model, pairs, second);

  const dspp::WindowProgram fresh(provider.model, pairs, second);
  const qp::QpProblem& a = updated.problem();
  const qp::QpProblem& b = fresh.problem();
  EXPECT_EQ(a.q, b.q);
  EXPECT_EQ(a.lower, b.lower);
  EXPECT_EQ(a.upper, b.upper);
  ASSERT_EQ(a.p.nnz(), b.p.nnz());
  ASSERT_EQ(a.a.nnz(), b.a.nnz());
  for (std::size_t k = 0; k < a.p.values().size(); ++k) {
    EXPECT_EQ(a.p.values()[k], b.p.values()[k]);
  }
  for (std::size_t k = 0; k < a.a.values().size(); ++k) {
    EXPECT_EQ(a.a.values()[k], b.a.values()[k]);
  }
}

TEST(WindowProgramUpdate, RejectsShapeChanges) {
  const auto provider = sample_providers(1, 5).front();
  const dspp::PairIndex pairs(provider.model);
  dspp::WindowProgram program(provider.model, pairs, inputs_for(provider));

  dspp::WindowInputs longer = inputs_for(provider);
  longer.demand.push_back(longer.demand.back());
  longer.price.push_back(longer.price.back());
  EXPECT_THROW(program.update(provider.model, pairs, longer), PreconditionError);

  dspp::WindowInputs hard = inputs_for(provider);
  hard.soft_demand_penalty = 0.0;
  EXPECT_THROW(program.update(provider.model, pairs, hard), PreconditionError);
}

TEST(AdmmCache, ParameterUpdatedSolvesMatchFreshSolver) {
  const auto provider = sample_providers(1, 7).front();
  const dspp::PairIndex pairs(provider.model);

  qp::AdmmSettings settings;
  settings.cache_structure = true;
  qp::AdmmSolver cached(settings);

  dspp::WindowInputs first = inputs_for(provider);
  dspp::WindowProgram program(provider.model, pairs, first);
  const qp::QpResult warmup = cached.solve(program.problem());
  ASSERT_TRUE(warmup.ok());

  dspp::WindowInputs second = inputs_for(provider);
  for (auto& d : second.demand) {
    for (double& value : d) value *= 1.2;
  }
  second.capacity_override = Vector{120.0, 140.0};
  program.update(provider.model, pairs, second);

  const qp::QpResult via_cache = cached.solve(program.problem());
  ASSERT_TRUE(via_cache.ok());

  qp::AdmmSettings cold_settings;
  cold_settings.cache_structure = false;
  qp::AdmmSolver cold(cold_settings);
  const qp::QpResult via_cold = cold.solve(program.problem());
  ASSERT_TRUE(via_cold.ok());

  EXPECT_NEAR(via_cache.objective, via_cold.objective,
              1e-5 * (1.0 + std::abs(via_cold.objective)));
  ASSERT_EQ(via_cache.x.size(), via_cold.x.size());
  for (std::size_t i = 0; i < via_cold.x.size(); ++i) {
    EXPECT_NEAR(via_cache.x[i], via_cold.x[i], 1e-4);
  }

  const qp::AdmmCacheStats& stats = cached.cache_stats();
  EXPECT_EQ(stats.solves, 2);
  EXPECT_EQ(stats.structure_hits, 1);
  EXPECT_GE(stats.full_factorizations, 1LL);

  // The per-solve SolveInfo mirrors the lifetime counters: cold setup on
  // the first solve; the second is a structure-cache hit, and since the
  // update touched only q/bounds the cached factorization is reused.
  EXPECT_EQ(warmup.info.cache_hits, 0);
  EXPECT_GE(warmup.info.factorizations, 1);
  EXPECT_FALSE(warmup.info.factorization_skipped);
  EXPECT_EQ(via_cache.info.cache_hits, 1);
  EXPECT_TRUE(via_cache.info.factorization_skipped);
}

TEST(AdmmCache, SkipsFactorizationWhenProblemUnchanged) {
  const auto provider = sample_providers(1, 9).front();
  const dspp::PairIndex pairs(provider.model);
  dspp::WindowProgram program(provider.model, pairs, inputs_for(provider));

  qp::AdmmSolver solver;  // cache_structure defaults to true
  const qp::QpResult first = solver.solve(program.problem());
  const qp::QpResult second = solver.solve(program.problem());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_NEAR(second.objective, first.objective, 1e-6 * (1.0 + std::abs(first.objective)));
  EXPECT_GE(solver.cache_stats().factorizations_skipped, 1LL);
  EXPECT_TRUE(second.info.factorization_skipped);
  EXPECT_EQ(second.info.factorizations, 0);
  EXPECT_EQ(second.info.cache_hits, 1);
}

TEST(AdmmCache, PatternChangeFallsBackToFullSetup) {
  const auto providers = sample_providers(2, 13);
  qp::AdmmSolver solver;

  const dspp::PairIndex pairs0(providers[0].model);
  dspp::WindowProgram soft(providers[0].model, pairs0, inputs_for(providers[0]));
  ASSERT_TRUE(solver.solve(soft.problem()).ok());

  // A hard-demand program drops the slack block: different dimensions and
  // pattern. The solver must transparently rerun the full setup.
  dspp::WindowInputs hard_inputs = inputs_for(providers[1]);
  hard_inputs.soft_demand_penalty = 0.0;
  const dspp::PairIndex pairs1(providers[1].model);
  dspp::WindowProgram hard(providers[1].model, pairs1, hard_inputs);
  const qp::QpResult result = solver.solve(hard.problem());
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(solver.cache_stats().structure_hits, 0);
  EXPECT_GE(solver.cache_stats().full_factorizations, 2LL);
}

TEST(AdmmWorkspace, ConcurrentWarmSolversAreRaceFreeAndBitIdentical) {
  // Each AdmmSolver owns its workspace; concurrent solvers sharing one
  // read-only QpProblem must not race (this is the configuration the
  // parallel best-response sweep runs, and the one the tsan preset checks).
  // Every lane re-solves twice so the second solve exercises the REUSED
  // warm workspace, and all lanes must produce bitwise-identical iterates.
  const auto provider = sample_providers(1, 23).front();
  const dspp::PairIndex pairs(provider.model);
  const dspp::WindowProgram program(provider.model, pairs, inputs_for(provider));
  const qp::QpProblem& problem = program.problem();

  constexpr std::size_t kLanes = 4;
  std::vector<qp::QpResult> warm_results(kLanes);
  ThreadPool pool(kLanes);
  pool.parallel_for(0, kLanes, [&](std::size_t lane) {
    qp::AdmmSolver solver;
    (void)solver.solve(problem);  // sizes the workspace
    warm_results[lane] = solver.solve(problem);
  });

  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    ASSERT_EQ(warm_results[lane].status, qp::SolveStatus::kOptimal) << "lane " << lane;
    EXPECT_EQ(warm_results[lane].info.hot_loop_allocations, 0) << "lane " << lane;
    EXPECT_EQ(warm_results[lane].x, warm_results[0].x) << "lane " << lane;
    EXPECT_EQ(warm_results[lane].y, warm_results[0].y) << "lane " << lane;
  }
}

TEST(ParallelGame, WarmStartMatchesColdStartEquilibrium) {
  // Regression for the warm-start cross-contamination bug: with one solver
  // PER PROVIDER, enabling auto_warm_start must converge to the same
  // equilibrium as cold starts (it only changes the starting iterate of
  // each provider's OWN previous problem).
  game::GameSettings cold;
  cold.epsilon = 0.01;
  cold.solver.auto_warm_start = false;
  game::GameSettings warm = cold;
  warm.solver.auto_warm_start = true;

  const game::GameResult cold_result = run_game(cold, 17);
  const game::GameResult warm_result = run_game(warm, 17);
  ASSERT_TRUE(cold_result.converged);
  ASSERT_TRUE(warm_result.converged);
  EXPECT_NEAR(warm_result.total_cost, cold_result.total_cost,
              0.02 * cold_result.total_cost);
  ASSERT_EQ(warm_result.quotas.size(), cold_result.quotas.size());
  for (std::size_t i = 0; i < cold_result.quotas.size(); ++i) {
    for (std::size_t l = 0; l < cold_result.quotas[i].size(); ++l) {
      EXPECT_NEAR(warm_result.quotas[i][l], cold_result.quotas[i][l], 10.0)
          << "i=" << i << " l=" << l;
    }
  }
}

}  // namespace
}  // namespace gp
