// Tests for trace CSV import/export and the threshold-autoscaler baseline.
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "control/autoscaler.hpp"
#include "sim/engine.hpp"
#include "workload/trace_io.hpp"

namespace gp {
namespace {

using linalg::Vector;

// --- trace_io ---

TEST(TraceIo, RoundTripsLosslessly) {
  workload::Trace trace;
  trace.columns = {"hour", "nyc", "la"};
  trace.values = {{0.0, 123.456, 1e-7}, {1.0, 0.1 + 0.2, 98765.4321}};
  std::ostringstream out;
  workload::save_trace_csv(trace, out);
  std::istringstream in(out.str());
  const auto loaded = workload::load_trace_csv(in);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  ASSERT_EQ(loaded.trace.columns, trace.columns);
  ASSERT_EQ(loaded.trace.periods(), 2u);
  for (std::size_t t = 0; t < 2; ++t) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(loaded.trace.values[t][c], trace.values[t][c]);
    }
  }
}

TEST(TraceIo, SkipsCommentsAndBlankLines) {
  std::istringstream in("# a demand trace\nh,v\n\n# midway comment\n1,2\n");
  const auto loaded = workload::load_trace_csv(in);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.trace.periods(), 1u);
  EXPECT_DOUBLE_EQ(loaded.trace.values[0][1], 2.0);
}

TEST(TraceIo, ReportsMalformedInput) {
  {
    std::istringstream in("h,v\n1\n");  // wrong width
    const auto r = workload::load_trace_csv(in);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("line 2"), std::string::npos);
  }
  {
    std::istringstream in("h,v\n1,abc\n");  // non-numeric
    EXPECT_FALSE(workload::load_trace_csv(in).ok);
  }
  {
    std::istringstream in("h,,v\n");  // empty column name
    EXPECT_FALSE(workload::load_trace_csv(in).ok);
  }
  {
    std::istringstream in("");
    const auto r = workload::load_trace_csv(in);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.error, "no header row");
  }
}

TEST(TraceIo, SaveValidatesShape) {
  workload::Trace ragged;
  ragged.columns = {"a", "b"};
  ragged.values = {{1.0}};
  std::ostringstream out;
  EXPECT_THROW(workload::save_trace_csv(ragged, out), PreconditionError);
  workload::Trace bad_name;
  bad_name.columns = {"a,b"};
  EXPECT_THROW(workload::save_trace_csv(bad_name, out), PreconditionError);
}

TEST(TraceIo, ReadsSimulationCsvOutput) {
  // The engine's CSV must parse as a trace (the promised round-trip).
  dspp::DsppModel model;
  model.network = topology::NetworkModel({"dc0"}, {"an0"}, {{10.0}});
  model.sla.mu = 100.0;
  model.sla.max_latency_ms = 60.0;
  model.reconfig_cost = {0.01};
  model.capacity = {1000.0};
  sim::SimulationConfig config;
  config.periods = 4;
  const auto demand = workload::DemandModel({{100.0, 0, workload::DiurnalProfile()}});
  const workload::ServerPriceModel prices(topology::default_datacenter_sites(1),
                                          workload::VmType::kMedium,
                                          workload::ElectricityPriceModel());
  sim::SimulationEngine engine(model, demand, prices, config);
  control::ReactiveController reactive(model);
  const auto summary = engine.run(sim::policy_from(reactive));
  std::ostringstream out;
  summary.write_csv(out);
  std::istringstream in(out.str());
  const auto loaded = workload::load_trace_csv(in);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.trace.periods(), 4u);
}

// --- autoscaler ---

dspp::DsppModel autoscaler_model() {
  dspp::DsppModel model;
  model.network = topology::NetworkModel({"dc0", "dc1"}, {"an0"}, {{10.0}, {20.0}});
  model.sla.mu = 100.0;
  model.sla.max_latency_ms = 100.0;
  model.reconfig_cost = {0.0, 0.0};
  model.capacity = {100.0, 100.0};
  return model;
}

TEST(Autoscaler, ScalesOutUnderHighUtilization) {
  control::ThresholdAutoscaler scaler(autoscaler_model());
  const auto& pairs = scaler.pairs();
  Vector state(pairs.num_pairs(), 0.0);
  state[0] = 2.0;  // 2 servers at dc0
  // 190 req/s over 2 servers at mu=100: utilization 0.95 > 0.8.
  const auto result = scaler.step(state, {190.0}, {0.05, 0.05});
  EXPECT_GT(result.next_state[0], 2.0);
  EXPECT_NEAR(result.next_state[0], 3.0, 1e-9);  // 1.5x step
}

TEST(Autoscaler, ScalesInUnderLowUtilization) {
  control::ThresholdAutoscaler scaler(autoscaler_model());
  Vector state(scaler.pairs().num_pairs(), 0.0);
  state[0] = 10.0;
  // 100 req/s over 10 servers: utilization 0.1 < 0.4.
  const auto result = scaler.step(state, {100.0}, {0.05, 0.05});
  EXPECT_LT(result.next_state[0], 10.0);
  EXPECT_NEAR(result.next_state[0], 8.0, 1e-9);  // 0.8x step
}

TEST(Autoscaler, HoldsInsideTheDeadband) {
  control::ThresholdAutoscaler scaler(autoscaler_model());
  Vector state(scaler.pairs().num_pairs(), 0.0);
  state[0] = 10.0;
  // 600 req/s over 10 servers: utilization 0.6 inside [0.4, 0.8].
  const auto result = scaler.step(state, {600.0}, {0.05, 0.05});
  EXPECT_DOUBLE_EQ(result.next_state[0], 10.0);
  EXPECT_DOUBLE_EQ(result.control[0], 0.0);
}

TEST(Autoscaler, BootstrapsColdAccessNetwork) {
  control::ThresholdAutoscaler scaler(autoscaler_model());
  const Vector state(scaler.pairs().num_pairs(), 0.0);
  const auto result = scaler.step(state, {300.0}, {0.09, 0.04});
  // Bootstrapped at the CHEAPER dc1 pair with ~a*D servers.
  const auto& pairs = scaler.pairs();
  const std::size_t p1 = *pairs.pair_of(1, 0);
  const double bootstrap = pairs.coefficient(p1) * 300.0;
  // The threshold loop may already scale the fresh bootstrap out once
  // (utilization at the SLA-minimal allocation sits above the watermark).
  EXPECT_GE(result.next_state[p1], bootstrap - 1e-9);
  EXPECT_LE(result.next_state[p1], bootstrap * 1.5 + 1e-9);
}

TEST(Autoscaler, CooldownBlocksBackToBackActions) {
  control::AutoscalerSettings settings;
  settings.cooldown_periods = 2;
  control::ThresholdAutoscaler scaler(autoscaler_model(), settings);
  Vector state(scaler.pairs().num_pairs(), 0.0);
  state[0] = 2.0;
  auto first = scaler.step(state, {190.0}, {0.05, 0.05});
  EXPECT_GT(first.next_state[0], 2.0);
  // Still hot, but cooling down: no further action for 2 periods.
  auto second = scaler.step(first.next_state, {290.0}, {0.05, 0.05});
  EXPECT_DOUBLE_EQ(second.next_state[0], first.next_state[0]);
}

TEST(Autoscaler, RespectsCapacity) {
  auto model = autoscaler_model();
  model.capacity = {4.0, 100.0};
  control::ThresholdAutoscaler scaler(model);
  Vector state(scaler.pairs().num_pairs(), 0.0);
  state[0] = 3.9;
  const auto result = scaler.step(state, {390.0 * 0.99}, {0.05, 0.05});
  EXPECT_LE(result.next_state[0], 4.0 + 1e-9);
}

TEST(Autoscaler, ValidatesSettings) {
  control::AutoscalerSettings bad;
  bad.high_utilization = 0.3;  // below low watermark
  EXPECT_THROW(control::ThresholdAutoscaler(autoscaler_model(), bad), PreconditionError);
  bad = {};
  bad.scale_in_factor = 1.2;
  EXPECT_THROW(control::ThresholdAutoscaler(autoscaler_model(), bad), PreconditionError);
}

TEST(Autoscaler, RunsInsideSimulationEngine) {
  auto model = autoscaler_model();
  const auto demand = workload::DemandModel({{400.0, -5, workload::DiurnalProfile()}});
  const workload::ServerPriceModel prices(topology::default_datacenter_sites(2),
                                          workload::VmType::kMedium,
                                          workload::ElectricityPriceModel());
  sim::SimulationConfig config;
  config.periods = 24;
  config.noisy_demand = true;
  control::ThresholdAutoscaler scaler(model);
  sim::SimulationEngine engine(model, demand, prices, config);
  const auto summary = engine.run(sim::policy_from(scaler));
  EXPECT_EQ(summary.periods.size(), 24u);
  EXPECT_GT(summary.total_cost, 0.0);
  EXPECT_GT(summary.mean_compliance, 0.3);  // crude but functional
}

}  // namespace
}  // namespace gp
