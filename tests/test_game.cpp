// Tests for the resource-competition game: random provider sampling,
// Algorithm 2 convergence, quota invariants, equilibrium quality against the
// social-welfare optimum (Theorem 1: PoS = 1), and the best-response
// property of the final iterate.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "game/competition.hpp"

namespace gp::game {
namespace {

using linalg::Vector;

topology::NetworkModel small_network() {
  // 2 data centers x 3 access networks, everything reachable.
  return topology::NetworkModel({"dc0", "dc1"}, {"an0", "an1", "an2"},
                                {{10.0, 20.0, 30.0}, {25.0, 15.0, 10.0}});
}

std::vector<ProviderConfig> sample_providers(std::size_t count, std::uint64_t seed,
                                             std::size_t horizon = 3) {
  Rng rng(seed);
  RandomProviderParams params;
  params.horizon = horizon;
  std::vector<ProviderConfig> providers;
  const auto network = small_network();
  for (std::size_t i = 0; i < count; ++i) {
    providers.push_back(make_random_provider(network, params, rng));
  }
  return providers;
}

TEST(RandomProvider, ProducesValidConfigs) {
  Rng rng(5);
  RandomProviderParams params;
  const auto network = small_network();
  for (int i = 0; i < 10; ++i) {
    const auto provider = make_random_provider(network, params, rng);
    EXPECT_NO_THROW(provider.model.validate());
    const dspp::PairIndex pairs(provider.model);  // throws if some AN unservable
    EXPECT_EQ(provider.initial_state.size(), pairs.num_pairs());
    ASSERT_EQ(provider.demand.size(), params.horizon);
    for (const auto& d : provider.demand) {
      ASSERT_EQ(d.size(), network.num_access_networks());
      for (double value : d) {
        EXPECT_GE(value, 1.0);
        EXPECT_LE(value, params.demand_max * 1.5);
      }
    }
    EXPECT_GE(provider.model.server_size, 1.0);
  }
}

TEST(RandomProvider, DeterministicPerSeed) {
  const auto a = sample_providers(3, 42);
  const auto b = sample_providers(3, 42);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(a[i].model.sla.mu, b[i].model.sla.mu);
    EXPECT_DOUBLE_EQ(a[i].demand[0][0], b[i].demand[0][0]);
  }
}

TEST(CompetitionGame, ValidatesConstruction) {
  auto providers = sample_providers(2, 1);
  EXPECT_THROW(CompetitionGame({}, Vector{100.0, 100.0}), PreconditionError);
  EXPECT_THROW(CompetitionGame(providers, Vector{100.0}), PreconditionError);  // L mismatch
  GameSettings bad;
  bad.soft_demand_penalty = 0.0;
  EXPECT_THROW(CompetitionGame(providers, Vector{100.0, 100.0}, bad), PreconditionError);
}

TEST(CompetitionGame, ConvergesWithAmpleCapacity) {
  // With capacity far above total demand no quota ever binds: duals are 0,
  // quotas stay, and the game converges in very few iterations.
  auto providers = sample_providers(3, 7);
  CompetitionGame game(std::move(providers), Vector{50000.0, 50000.0});
  const GameResult result = game.run();
  EXPECT_TRUE(result.converged);
  // 1 baseline iteration + the consecutive-stability streak.
  EXPECT_LE(result.iterations, 2 + GameSettings{}.stable_iterations_required);
  EXPECT_NEAR(result.total_unserved, 0.0, 1e-3);
}

TEST(CompetitionGame, QuotasPartitionCapacity) {
  auto providers = sample_providers(4, 11);
  const Vector capacity{60.0, 80.0};
  CompetitionGame game(std::move(providers), capacity);
  const GameResult result = game.run();
  ASSERT_EQ(result.quotas.size(), 4u);
  for (std::size_t l = 0; l < 2; ++l) {
    double total = 0.0;
    for (const auto& quota : result.quotas) {
      EXPECT_GT(quota[l], 0.0);
      total += quota[l];
    }
    EXPECT_NEAR(total, capacity[l], 1e-6 * capacity[l] + 1e-6);
  }
}

TEST(CompetitionGame, TightCapacityTakesMoreIterations) {
  // The paper's Fig. 7 trend: tighter bottlenecks converge slower.
  GameSettings settings;
  settings.epsilon = 0.01;
  auto iterations_for = [&](double capacity) {
    auto providers = sample_providers(5, 13);
    CompetitionGame game(std::move(providers), Vector{capacity, capacity}, settings);
    return game.run().iterations;
  };
  const int tight = iterations_for(150.0);
  const int loose = iterations_for(5000.0);
  EXPECT_GE(tight, loose);
  EXPECT_LE(loose, 2 + GameSettings{}.stable_iterations_required);
}

TEST(CompetitionGame, EquilibriumCostMatchesSocialWelfare) {
  // Theorem 1 (PoS = 1): the converged outcome should be close to the SWP
  // optimum. Use a moderately tight capacity so the constraint matters.
  GameSettings settings;
  settings.epsilon = 0.002;
  settings.max_iterations = 2000;
  auto providers = sample_providers(3, 17);
  CompetitionGame game(std::move(providers), Vector{400.0, 400.0}, settings);
  const GameResult equilibrium = game.run();
  ASSERT_TRUE(equilibrium.converged);
  const SocialWelfareResult welfare = game.solve_social_welfare();
  ASSERT_TRUE(welfare.solved);
  const double ratio = efficiency_ratio(equilibrium, welfare);
  EXPECT_GT(ratio, 0.9);   // the NE cannot genuinely beat the optimum
  EXPECT_LT(ratio, 1.25);  // ... and should be near it (PoS ~ 1)
}

TEST(CompetitionGame, SocialWelfareRespectsSharedCapacity) {
  auto providers = sample_providers(3, 19);
  std::vector<double> server_sizes;
  for (const auto& provider : providers) server_sizes.push_back(provider.model.server_size);
  const Vector capacity{120.0, 150.0};
  CompetitionGame game(std::move(providers), capacity);
  const SocialWelfareResult welfare = game.solve_social_welfare();
  ASSERT_TRUE(welfare.solved);
  // Aggregate size-weighted allocation per DC and period must fit in C^l
  // (eq. 16/17 of the paper).
  const std::size_t horizon = welfare.x.front().size();
  for (std::size_t t = 0; t < horizon; ++t) {
    for (std::size_t l = 0; l < capacity.size(); ++l) {
      double used = 0.0;
      for (std::size_t i = 0; i < game.num_providers(); ++i) {
        for (const std::size_t pair : game.pairs(i).pairs_of_datacenter(l)) {
          used += server_sizes[i] * welfare.x[i][t][pair];
        }
      }
      EXPECT_LE(used, capacity[l] * (1.0 + 1e-4) + 1e-3) << "t=" << t << " l=" << l;
    }
  }
  EXPECT_GT(welfare.total_cost, 0.0);
}

TEST(CompetitionGame, FinalIterateIsBestResponse) {
  // At the final quotas, no provider can reduce its own cost by deviating:
  // its solution is the optimum of ITS OWN QP given the quota, so any random
  // feasible perturbation must cost at least as much.
  GameSettings settings;
  settings.epsilon = 0.01;
  auto providers = sample_providers(2, 23);
  const auto providers_copy = providers;
  CompetitionGame game(std::move(providers), Vector{200.0, 200.0}, settings);
  const GameResult result = game.run();
  ASSERT_TRUE(result.converged);

  // Re-solve provider 0's window program at its final quota and compare
  // with scaled-up variants of its own allocation (feasible, costlier).
  const auto& provider = providers_copy[0];
  const dspp::PairIndex pairs(provider.model);
  dspp::WindowInputs inputs;
  inputs.initial_state = provider.initial_state;
  inputs.demand = provider.demand;
  inputs.price = provider.price;
  inputs.capacity_override = result.quotas[0];
  inputs.soft_demand_penalty = settings.soft_demand_penalty;
  const dspp::WindowProgram program(provider.model, pairs, std::move(inputs));
  const auto& problem = program.problem();

  // Build the raw optimal z from the stored solution and check that adding
  // servers anywhere (keeping feasibility) does not reduce the objective.
  qp::AdmmSolver solver;
  const qp::QpResult optimal = solver.solve(problem);
  ASSERT_TRUE(optimal.ok());
  Rng rng(29);
  for (int trial = 0; trial < 5; ++trial) {
    qp::QpResult perturbed = optimal;
    // Inflate x (and matching u) by 1-5%: stays demand- and sign-feasible
    // as long as capacity allows; skip the trial if it violates capacity.
    const double factor = 1.0 + rng.uniform(0.01, 0.05);
    for (double& z : perturbed.x) z *= factor;
    if (problem.constraint_violation(perturbed.x) > 1e-6) continue;
    EXPECT_GE(problem.objective(perturbed.x), optimal.objective - 1e-6);
  }
}

TEST(CompetitionGame, CostHistoryIsRecorded) {
  auto providers = sample_providers(3, 31);
  CompetitionGame game(std::move(providers), Vector{150.0, 150.0});
  const GameResult result = game.run();
  EXPECT_EQ(static_cast<int>(result.cost_history.size()), result.iterations);
  for (double cost : result.cost_history) EXPECT_GT(cost, 0.0);
}

TEST(EfficiencyRatio, ValidatesInputs) {
  GameResult equilibrium;
  SocialWelfareResult welfare;
  EXPECT_THROW(efficiency_ratio(equilibrium, welfare), PreconditionError);
  welfare.solved = true;
  welfare.total_cost = 0.0;
  EXPECT_THROW(efficiency_ratio(equilibrium, welfare), PreconditionError);
  welfare.total_cost = 2.0;
  equilibrium.total_cost = 3.0;
  EXPECT_DOUBLE_EQ(efficiency_ratio(equilibrium, welfare), 1.5);
}

}  // namespace
}  // namespace gp::game
