// Integration tests for the dynamic multi-tenant simulation: Algorithm 2
// inside the receding-horizon loop, with quota warm starting.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/multi_provider.hpp"

namespace gp::sim {
namespace {

using linalg::Vector;

topology::NetworkModel shared_network() {
  return topology::NetworkModel({"dc0", "dc1"}, {"an0", "an1"},
                                {{12.0, 30.0}, {28.0, 14.0}});
}

TenantConfig make_tenant(double base_rate, double server_size, int utc_offset) {
  dspp::DsppModel model;
  model.network = shared_network();
  model.sla.mu = 100.0;
  model.sla.max_latency_ms = 100.0;
  model.reconfig_cost = {0.05, 0.05};
  model.capacity = {1e12, 1e12};  // quotas govern capacity
  model.server_size = server_size;
  return TenantConfig{
      std::move(model),
      workload::DemandModel({{base_rate, utc_offset, workload::DiurnalProfile()},
                             {base_rate * 0.6, utc_offset, workload::DiurnalProfile()}}),
      std::make_unique<control::LastValuePredictor>()};
}

workload::ServerPriceModel shared_prices() {
  return workload::ServerPriceModel(topology::default_datacenter_sites(2),
                                    workload::VmType::kMedium,
                                    workload::ElectricityPriceModel());
}

MultiTenantConfig default_config(std::size_t periods = 12) {
  MultiTenantConfig config;
  config.periods = periods;
  config.horizon = 3;
  config.game.epsilon = 0.05;
  return config;
}

TEST(MultiTenant, RunsWithAmpleCapacityAndServesEverything) {
  std::vector<TenantConfig> tenants;
  tenants.push_back(make_tenant(300.0, 1.0, -5));
  tenants.push_back(make_tenant(200.0, 2.0, -8));
  MultiTenantSimulation simulation(std::move(tenants), shared_prices(),
                                   Vector{5000.0, 5000.0}, default_config());
  const auto summary = simulation.run();
  ASSERT_EQ(summary.tenants.size(), 2u);
  ASSERT_EQ(summary.tenants[0].size(), 12u);
  EXPECT_NEAR(summary.total_unserved, 0.0, 1e-3);
  EXPECT_GT(summary.total_cost, 0.0);
  for (const bool converged : summary.game_converged) EXPECT_TRUE(converged);
  // After warm-up the allocation covers the demand in capacity units.
  const auto& last = summary.tenants[0].back();
  EXPECT_GT(last.servers, 0.0);
}

TEST(MultiTenant, TightCapacityCreatesUnservedDemand) {
  std::vector<TenantConfig> tenants;
  tenants.push_back(make_tenant(800.0, 1.0, -5));
  tenants.push_back(make_tenant(800.0, 1.0, -5));
  MultiTenantConfig config = default_config(8);
  config.utc_start_hour = 16.0;  // local busy hours from the start
  MultiTenantSimulation simulation(std::move(tenants), shared_prices(),
                                   Vector{4.0, 4.0},  // absurdly tight
                                   config);
  const auto summary = simulation.run();
  EXPECT_GT(summary.total_unserved, 1.0);
}

TEST(MultiTenant, DeterministicForSeed) {
  auto build = [] {
    std::vector<TenantConfig> tenants;
    tenants.push_back(make_tenant(300.0, 1.0, -5));
    tenants.push_back(make_tenant(150.0, 2.0, -6));
    MultiTenantConfig config = default_config(6);
    config.noisy_demand = true;
    config.seed = 99;
    return MultiTenantSimulation(std::move(tenants), shared_prices(),
                                 Vector{2000.0, 2000.0}, std::move(config));
  };
  auto a = build().run();
  auto b = build().run();
  EXPECT_DOUBLE_EQ(a.total_cost, b.total_cost);
  for (std::size_t k = 0; k < a.game_iterations.size(); ++k) {
    EXPECT_EQ(a.game_iterations[k], b.game_iterations[k]);
  }
}

TEST(MultiTenant, WarmStartedQuotasSettle) {
  // With warm-started quotas the per-period negotiation should settle to
  // the trivial iteration count once demand stabilizes.
  std::vector<TenantConfig> tenants;
  tenants.push_back(make_tenant(400.0, 1.0, -5));
  tenants.push_back(make_tenant(400.0, 1.0, -5));
  MultiTenantConfig config = default_config(10);
  config.utc_start_hour = 10.0;  // inside the busy plateau: stable demand
  config.warm_start_quotas = true;
  MultiTenantSimulation simulation(std::move(tenants), shared_prices(),
                                   Vector{60.0, 60.0}, std::move(config));
  const auto summary = simulation.run();
  const int floor_iterations = 1 + config.game.stable_iterations_required;
  // The tail periods should sit at (or very near) the floor.
  int tail_sum = 0;
  for (std::size_t k = summary.game_iterations.size() - 3;
       k < summary.game_iterations.size(); ++k) {
    tail_sum += summary.game_iterations[k];
  }
  EXPECT_LE(tail_sum, 3 * (floor_iterations + 2));
}

TEST(MultiTenant, ValidatesConstruction) {
  EXPECT_THROW(MultiTenantSimulation({}, shared_prices(), Vector{1.0, 1.0}, {}),
               PreconditionError);
  std::vector<TenantConfig> tenants;
  tenants.push_back(make_tenant(100.0, 1.0, 0));
  EXPECT_THROW(MultiTenantSimulation(std::move(tenants), shared_prices(), Vector{1.0},
                                     default_config()),
               PreconditionError);
  std::vector<TenantConfig> no_predictor;
  no_predictor.push_back(make_tenant(100.0, 1.0, 0));
  no_predictor[0].predictor.reset();
  EXPECT_THROW(MultiTenantSimulation(std::move(no_predictor), shared_prices(),
                                     Vector{1.0, 1.0}, default_config()),
               PreconditionError);
}

}  // namespace
}  // namespace gp::sim
