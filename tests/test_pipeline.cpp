// End-to-end pipeline test: the paper's full experimental workflow wired
// together in one place — ISP backbone -> GT-ITM augmentation -> latency
// matrix -> SLA pair index -> MPC simulation -> multi-provider competition
// on the same network. Guards against drift between the modules' contracts.
#include <gtest/gtest.h>

#include <sstream>

#include "game/competition.hpp"
#include "sim/engine.hpp"
#include "topology/isp_map.hpp"

namespace gp {
namespace {

using linalg::Vector;

TEST(Pipeline, BackboneToSimulationToGame) {
  // --- Topology: bundled backbone, augmented, embedded. ---
  std::istringstream backbone_text(topology::example_backbone_text());
  const auto backbone = topology::load_isp_map(backbone_text);
  ASSERT_TRUE(backbone.ok) << backbone.error;
  Rng rng(2027);
  const auto topo = topology::augment_with_access_networks(backbone.map, 2, 3, rng);
  const auto network = topology::NetworkModel::from_transit_stub(topo, 3, 8, rng);

  // --- Single-provider model + MPC over half a day. ---
  dspp::DsppModel model;
  model.network = network;
  model.sla.mu = 100.0;
  model.sla.max_latency_ms = 130.0;  // transit-stub latencies are chunky
  model.reconfig_cost.assign(3, 0.01);
  model.capacity.assign(3, 2000.0);
  ASSERT_NO_THROW(dspp::PairIndex{model});

  std::vector<workload::DemandSource> sources;
  for (std::size_t v = 0; v < network.num_access_networks(); ++v) {
    sources.push_back({60.0 + 10.0 * static_cast<double>(v), -5, workload::DiurnalProfile()});
  }
  const workload::DemandModel demand{std::move(sources)};
  const workload::ServerPriceModel prices(topology::default_datacenter_sites(3),
                                          workload::VmType::kMedium,
                                          workload::ElectricityPriceModel());
  sim::SimulationConfig config;
  config.periods = 12;
  config.noisy_demand = true;
  config.seed = 7;
  control::MpcSettings settings;
  settings.horizon = 3;
  control::MpcController controller(model, settings,
                                    std::make_unique<control::ArPredictor>(2, 24),
                                    std::make_unique<control::LastValuePredictor>());
  sim::SimulationEngine engine(model, demand, prices, config);
  const auto summary = engine.run(sim::policy_from(controller));
  EXPECT_EQ(summary.unsolved_periods, 0);
  EXPECT_GT(summary.total_cost, 0.0);
  EXPECT_GT(summary.mean_compliance, 0.5);

  // --- Two providers compete on the SAME network. ---
  game::RandomProviderParams params;
  params.horizon = 2;
  params.max_latency_min_ms = 120.0;
  params.max_latency_max_ms = 200.0;
  std::vector<game::ProviderConfig> providers;
  for (int i = 0; i < 2; ++i) {
    providers.push_back(game::make_random_provider(network, params, rng));
  }
  game::CompetitionGame game(std::move(providers), Vector{300.0, 300.0, 300.0});
  const auto equilibrium = game.run();
  EXPECT_TRUE(equilibrium.converged);
  const auto welfare = game.solve_social_welfare();
  ASSERT_TRUE(welfare.solved);
  EXPECT_LT(game::efficiency_ratio(equilibrium, welfare), 1.5);
}

}  // namespace
}  // namespace gp
