// Tests for the workload substrate: diurnal profiles, demand model / NHPP
// sampling, flash crowds, and the electricity / server price models.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "workload/demand.hpp"
#include "workload/price.hpp"

namespace gp::workload {
namespace {

TEST(Diurnal, BusyHoursAreHigh) {
  const DiurnalProfile profile;  // defaults: low 0.25, high 1.0, busy 8-17
  EXPECT_NEAR(profile.multiplier(12.0), 1.0, 1e-6);
  EXPECT_NEAR(profile.multiplier(3.0), 0.25, 1e-6);
  EXPECT_NEAR(profile.multiplier(22.0), 0.25, 1e-6);
}

TEST(Diurnal, RampIsMonotoneAndBounded) {
  const DiurnalProfile profile;
  double last = profile.multiplier(6.0);
  for (double h = 6.1; h <= 10.0; h += 0.1) {
    const double m = profile.multiplier(h);
    EXPECT_GE(m + 1e-12, last);
    EXPECT_GE(m, profile.low() - 1e-12);
    EXPECT_LE(m, profile.high() + 1e-12);
    last = m;
  }
}

TEST(Diurnal, WrapsAroundMidnight) {
  const DiurnalProfile profile;
  EXPECT_DOUBLE_EQ(profile.multiplier(25.0), profile.multiplier(1.0));
  EXPECT_DOUBLE_EQ(profile.multiplier(-1.0), profile.multiplier(23.0));
}

TEST(Diurnal, RejectsBadParameters) {
  EXPECT_THROW(DiurnalProfile(1.0, 0.5), PreconditionError);            // high < low
  EXPECT_THROW(DiurnalProfile(0.2, 1.0, 17.0, 8.0), PreconditionError); // start > end
  EXPECT_THROW(DiurnalProfile(0.2, 1.0, 8.0, 17.0, 0.0), PreconditionError);
}

TEST(Diurnal, LocalHourConversion) {
  EXPECT_DOUBLE_EQ(local_hour(12.0, -5), 7.0);
  EXPECT_DOUBLE_EQ(local_hour(2.0, -8), 18.0);   // wraps backwards
  EXPECT_DOUBLE_EQ(local_hour(23.0, 3), 2.0);    // wraps forwards
}

TEST(Demand, MeanRateFollowsProfileAndTimezone) {
  // Two sources with identical base rates in different time zones: at
  // 17:00 UTC, the EST city (12:00 local) is busy; the PST city (09:00
  // local) is also busy; at 07:00 UTC EST is 02:00 (quiet).
  DemandModel model({{100.0, -5, DiurnalProfile()}, {100.0, -8, DiurnalProfile()}});
  EXPECT_NEAR(model.mean_rate(0, 17.0), 100.0, 1e-6);
  EXPECT_NEAR(model.mean_rate(0, 7.0), 25.0, 1e-6);
  // Peak-vs-quiet must differ across zones at the same UTC instant.
  EXPECT_GT(model.mean_rate(0, 17.0), model.mean_rate(0, 7.0));
}

TEST(Demand, FromCitiesScalesWithPopulation) {
  const auto& cities = topology::us_cities24();
  const auto model = DemandModel::from_cities(cities, 1e-5, DiurnalProfile());
  ASSERT_EQ(model.num_access_networks(), 24u);
  // New York (index 0) has more demand than Charlotte (index 22) at every hour.
  for (double hour = 0.0; hour < 24.0; hour += 3.0) {
    EXPECT_GT(model.mean_rate(0, hour), model.mean_rate(22, hour));
  }
}

TEST(Demand, FlashCrowdMultipliesRateDuringWindow) {
  DemandModel model({{100.0, 0, DiurnalProfile(1.0, 1.0)}});  // flat profile
  model.add_flash_crowd({0, 10.0, 2.0, 5.0});
  EXPECT_NEAR(model.mean_rate(0, 9.5), 100.0, 1e-9);
  EXPECT_NEAR(model.mean_rate(0, 10.5), 500.0, 1e-9);
  EXPECT_NEAR(model.mean_rate(0, 12.5), 100.0, 1e-9);
}

TEST(Demand, SampleRateIsUnbiased) {
  DemandModel model({{50.0, 0, DiurnalProfile(1.0, 1.0)}});
  Rng rng(42);
  std::vector<double> samples;
  for (int i = 0; i < 500; ++i) samples.push_back(model.sample_rate(0, 12.0, 0.25, rng));
  EXPECT_NEAR(gp::mean(samples), 50.0, 1.0);
  EXPECT_GT(gp::stddev(samples), 0.0);  // it is actually noisy
}

TEST(Demand, LargeRatesUseNormalApproximation) {
  // 1e6 req/s over an hour -> 3.6e9 expected arrivals, must not hang.
  DemandModel model({{1e6, 0, DiurnalProfile(1.0, 1.0)}});
  Rng rng(7);
  const double rate = model.sample_rate(0, 0.0, 1.0, rng);
  EXPECT_NEAR(rate, 1e6, 1e4);
}

TEST(Demand, TraceShapeAndDeterminism) {
  DemandModel model({{100.0, -5, DiurnalProfile()}, {10.0, -8, DiurnalProfile()}});
  Rng rng_a(1), rng_b(1);
  const auto noisy_a = model.trace(48, 0.5, 0.0, true, rng_a);
  const auto noisy_b = model.trace(48, 0.5, 0.0, true, rng_b);
  ASSERT_EQ(noisy_a.size(), 48u);
  ASSERT_EQ(noisy_a[0].size(), 2u);
  for (std::size_t k = 0; k < 48; ++k)
    for (std::size_t v = 0; v < 2; ++v) EXPECT_DOUBLE_EQ(noisy_a[k][v], noisy_b[k][v]);
  // Mean trace needs no RNG draws and is smooth.
  Rng rng_c(99);
  const auto clean = model.trace(48, 0.5, 0.0, false, rng_c);
  for (const auto& row : clean)
    for (double r : row) EXPECT_GE(r, 0.0);
}

TEST(Demand, PreconditionChecks) {
  EXPECT_THROW(DemandModel({}), PreconditionError);
  DemandModel model({{10.0, 0, DiurnalProfile()}});
  EXPECT_THROW(model.mean_rate(5, 0.0), PreconditionError);
  EXPECT_THROW(model.add_flash_crowd({3, 0.0, 1.0, 2.0}), PreconditionError);
  Rng rng(1);
  EXPECT_THROW(model.sample_rate(0, 0.0, 0.0, rng), PreconditionError);
}

TEST(Price, VmWattsMatchPaper) {
  EXPECT_DOUBLE_EQ(vm_watts(VmType::kSmall), 30.0);
  EXPECT_DOUBLE_EQ(vm_watts(VmType::kMedium), 70.0);
  EXPECT_DOUBLE_EQ(vm_watts(VmType::kLarge), 140.0);
}

TEST(Price, RegionalCurvesMatchFigure3Shape) {
  const ElectricityPriceModel model;
  // All prices within the figure's ~$10-$115 envelope, at all hours.
  for (double h = 0.0; h < 24.0; h += 0.5) {
    for (auto region : {topology::Region::kCalifornia, topology::Region::kTexas,
                        topology::Region::kSoutheast, topology::Region::kMidwest,
                        topology::Region::kEast}) {
      const double p = model.price(region, h);
      EXPECT_GT(p, 5.0) << to_string(region) << " @ " << h;
      EXPECT_LT(p, 120.0) << to_string(region) << " @ " << h;
    }
  }
  // California afternoon peak exceeds Texas at the same local hour (the
  // driver of the paper's Fig. 5 shift).
  EXPECT_GT(model.price(topology::Region::kCalifornia, 17.0),
            model.price(topology::Region::kTexas, 17.0) + 20.0);
  // Peak is in the afternoon, overnight is the trough.
  EXPECT_GT(model.price(topology::Region::kCalifornia, 17.0),
            model.price(topology::Region::kCalifornia, 3.0));
}

TEST(Price, NoisyPriceIsCleanAtZeroVolatility) {
  const ElectricityPriceModel model(0.0);
  Rng rng(3);
  EXPECT_DOUBLE_EQ(model.noisy_price(topology::Region::kTexas, 12.0, rng),
                   model.price(topology::Region::kTexas, 12.0));
  const ElectricityPriceModel volatile_model(0.2);
  double spread = 0.0;
  for (int i = 0; i < 100; ++i) {
    spread += std::abs(volatile_model.noisy_price(topology::Region::kTexas, 12.0, rng) -
                       volatile_model.price(topology::Region::kTexas, 12.0));
  }
  EXPECT_GT(spread, 1.0);
}

TEST(Price, ServerPriceConvertsUnits) {
  // 70 W at PUE 1.3 is 91 W -> 9.1e-5 MW; at $50/MWh that is $0.00455/h.
  const auto sites = topology::default_datacenter_sites(1);
  const ServerPriceModel model(sites, VmType::kMedium, ElectricityPriceModel(), 1.3, 0.0);
  const double utc_noon_local = 12.0 - sites[0].location.utc_offset_hours;
  const double electricity = model.electricity_price(0, utc_noon_local);
  EXPECT_NEAR(model.server_price(0, utc_noon_local), electricity * 91e-6, 1e-12);
}

TEST(Price, BasePriceAddsFloor) {
  const auto sites = topology::default_datacenter_sites(1);
  const ServerPriceModel with_base(sites, VmType::kSmall, ElectricityPriceModel(), 1.0, 0.08);
  const ServerPriceModel without(sites, VmType::kSmall, ElectricityPriceModel(), 1.0, 0.0);
  EXPECT_NEAR(with_base.server_price(0, 0.0) - without.server_price(0, 0.0), 0.08, 1e-12);
}

TEST(Price, TraceFollowsLocalTimePeaks) {
  // San Jose (UTC-8) afternoon peak at 17:00 local = 01:00 UTC next day.
  const auto sites = topology::default_datacenter_sites(4);
  const ServerPriceModel model(sites, VmType::kMedium, ElectricityPriceModel());
  const auto trace = model.trace(24, 1.0, 0.0);
  ASSERT_EQ(trace.size(), 24u);
  ASSERT_EQ(trace[0].size(), 4u);
  // Find the hour of maximum CA price in the trace; should be 0-2 UTC or
  // 23 UTC (17:00 +/- local).
  std::size_t argmax = 0;
  for (std::size_t k = 1; k < 24; ++k)
    if (trace[k][0] > trace[argmax][0]) argmax = k;
  const double local = local_hour(static_cast<double>(argmax) + 0.5,
                                  sites[0].location.utc_offset_hours);
  EXPECT_NEAR(local, 17.0, 1.51);
}

TEST(Price, PreconditionChecks) {
  EXPECT_THROW(ElectricityPriceModel(-0.1), PreconditionError);
  const auto sites = topology::default_datacenter_sites(1);
  EXPECT_THROW(ServerPriceModel(sites, VmType::kSmall, ElectricityPriceModel(), 0.5),
               PreconditionError);
  EXPECT_THROW(ServerPriceModel({}, VmType::kSmall, ElectricityPriceModel()),
               PreconditionError);
  const ServerPriceModel model(sites, VmType::kSmall, ElectricityPriceModel());
  EXPECT_THROW(model.server_price(3, 0.0), PreconditionError);
}

}  // namespace
}  // namespace gp::workload
