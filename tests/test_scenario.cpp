// Scenario layer: presets reproduce the legacy bench assembly bit-for-bit,
// SweepRunner is deterministic at any thread count, and the exported
// artifacts (JSONL / CSV) are well-formed.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "obs/manifest.hpp"
#include "obs/timeline.hpp"
#include "scenario/policy.hpp"
#include "scenario/registry.hpp"
#include "scenario/sweep.hpp"
#include "sim/engine.hpp"
#include "topology/geo.hpp"
#include "workload/demand.hpp"
#include "workload/price.hpp"

namespace {

using namespace gp;

TEST(ScenarioRegistry, KnowsThePaperPresets) {
  const auto names = scenario::preset_names();
  EXPECT_GE(names.size(), 10u);
  for (const char* name : {"paper_full", "fig04", "fig09_volatile", "ablation_small"}) {
    EXPECT_TRUE(scenario::has_preset(name)) << name;
    EXPECT_EQ(scenario::preset(name).name, name);
  }
  EXPECT_FALSE(scenario::has_preset("no_such_preset"));
  EXPECT_THROW(scenario::preset("no_such_preset"), PreconditionError);
}

// The exact environment the figure benches assembled by hand before the
// scenario layer existed (bench/scenarios.hpp::paper_scenario, 2 DCs x 4
// cities). build(section7_spec(...)) must reproduce it bit-for-bit — the
// figures in the paper replication depend on it.
TEST(ScenarioBuild, MatchesLegacyBenchAssemblyBitForBit) {
  const std::size_t num_dcs = 2, num_cities = 4;
  const double rate_per_capita = 2e-5;

  // Legacy assembly, inlined verbatim.
  auto sites = topology::default_datacenter_sites(num_dcs);
  const auto& all = topology::us_cities24();
  std::vector<topology::City> cities(all.begin(),
                                     all.begin() + static_cast<std::ptrdiff_t>(num_cities));
  dspp::DsppModel legacy_model;
  legacy_model.network = topology::NetworkModel::from_geography(sites, cities);
  legacy_model.sla.mu = 100.0;
  legacy_model.sla.max_latency_ms = 32.0;
  legacy_model.sla.reservation_ratio = 1.1;
  legacy_model.reconfig_cost.assign(num_dcs, 0.002);
  legacy_model.capacity.assign(num_dcs, 2000.0);
  auto legacy_demand = workload::DemandModel::from_cities(cities, rate_per_capita, {});
  workload::ServerPriceModel legacy_prices(sites, workload::VmType::kMedium,
                                           workload::ElectricityPriceModel());

  const auto bundle = scenario::build(scenario::section7_spec(num_dcs, num_cities));

  EXPECT_EQ(bundle.model.sla.mu, legacy_model.sla.mu);
  EXPECT_EQ(bundle.model.sla.max_latency_ms, legacy_model.sla.max_latency_ms);
  EXPECT_EQ(bundle.model.sla.reservation_ratio, legacy_model.sla.reservation_ratio);
  ASSERT_EQ(bundle.model.reconfig_cost, legacy_model.reconfig_cost);
  ASSERT_EQ(bundle.model.capacity, legacy_model.capacity);
  ASSERT_EQ(bundle.model.network.num_datacenters(), num_dcs);
  ASSERT_EQ(bundle.model.network.num_access_networks(), num_cities);
  for (std::size_t l = 0; l < num_dcs; ++l) {
    for (std::size_t v = 0; v < num_cities; ++v) {
      EXPECT_EQ(bundle.model.network.latency_ms(l, v), legacy_model.network.latency_ms(l, v));
    }
  }
  for (double hour : {0.0, 6.5, 13.0, 23.0}) {
    EXPECT_EQ(bundle.demand.mean_rates(hour), legacy_demand.mean_rates(hour));
    EXPECT_EQ(bundle.prices.server_prices(hour), legacy_prices.server_prices(hour));
  }
}

scenario::SweepGrid small_grid() {
  scenario::SweepGrid grid;
  auto spec = scenario::preset("ablation_small");
  spec.sim.periods = 8;  // enough periods to exercise aggregation, still fast
  grid.scenarios = {spec};
  grid.policies = {scenario::PolicySpec{}, [] {
                     scenario::PolicySpec reactive;
                     reactive.kind = "reactive";
                     return reactive;
                   }()};
  grid.num_seeds = 3;
  grid.base_seed = 11;
  return grid;
}

std::string jsonl_at(const scenario::SweepGrid& grid, std::size_t threads) {
  scenario::SweepOptions options;
  options.max_threads = threads;
  std::ostringstream out;
  scenario::SweepRunner(grid, options).run().write_jsonl(out);
  return out.str();
}

TEST(SweepRunner, BitIdenticalAcrossThreadCounts) {
  const auto grid = small_grid();
  EXPECT_EQ(jsonl_at(grid, 1), jsonl_at(grid, 4));
}

TEST(SweepRunner, DerivedSeedsAreStableAndDistinct) {
  EXPECT_EQ(scenario::derive_run_seed(11, 0), scenario::derive_run_seed(11, 0));
  EXPECT_NE(scenario::derive_run_seed(11, 0), scenario::derive_run_seed(11, 1));
  EXPECT_NE(scenario::derive_run_seed(11, 0), scenario::derive_run_seed(12, 0));
}

TEST(SweepRunner, ExplicitSeedsOverrideDerivation) {
  auto grid = small_grid();
  grid.seeds = {42, 43};
  const auto result = scenario::SweepRunner(grid).run();
  ASSERT_EQ(result.runs.size(), grid.policies.size() * grid.seeds.size());
  for (const auto& record : result.runs) {
    EXPECT_EQ(record.seed, grid.seeds[record.seed_index]);
  }
}

TEST(SweepRunner, CellsAggregateTheSeedAxis) {
  const auto grid = small_grid();
  const auto result = scenario::SweepRunner(grid).run();
  ASSERT_EQ(result.runs.size(), 2u * 3u);
  ASSERT_EQ(result.cells.size(), 2u);
  for (std::size_t pi = 0; pi < result.cells.size(); ++pi) {
    const auto& cell = result.cells[pi];
    EXPECT_EQ(cell.runs, 3);
    double mean = 0.0, lo = 1e300, hi = -1e300;
    for (std::size_t ki = 0; ki < 3; ++ki) {
      const double cost = result.runs[pi * 3 + ki].summary.total_cost;
      mean += cost / 3.0;
      lo = std::min(lo, cost);
      hi = std::max(hi, cost);
    }
    EXPECT_NEAR(cell.total_cost.mean, mean, 1e-9 * std::abs(mean));
    EXPECT_EQ(cell.total_cost.min, lo);
    EXPECT_EQ(cell.total_cost.max, hi);
    EXPECT_GE(cell.total_cost.stddev, 0.0);
  }
}

TEST(SweepRunner, ExportsAreWellFormed) {
  const auto grid = small_grid();
  const auto result = scenario::SweepRunner(grid).run();

  std::ostringstream jsonl;
  result.write_jsonl(jsonl);
  ASSERT_TRUE(obs::is_manifest_line(jsonl.str()));  // provenance header first
  std::istringstream lines(obs::strip_manifest_lines(jsonl.str()));
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"scenario\":\"ablation_small\""), std::string::npos);
    EXPECT_NE(line.find("\"total_cost\":"), std::string::npos);
    ++count;
  }
  EXPECT_EQ(count, result.runs.size());

  std::ostringstream csv;
  result.write_csv(csv);
  std::istringstream csv_lines(csv.str());
  std::size_t csv_count = 0;
  while (std::getline(csv_lines, line)) ++csv_count;
  EXPECT_EQ(csv_count, 1 + result.cells.size());  // header + one row per cell
}

TEST(SweepRunner, RejectsEmptyGridAxes) {
  scenario::SweepGrid grid;
  EXPECT_THROW(scenario::SweepRunner(grid).run(), PreconditionError);
}

// Regression: unsolved periods carry NaN latency/compliance; those cells
// must be exported empty, never as "nan" tokens that break CSV consumers.
TEST(SimulationSummaryCsv, UnsolvedPeriodsWriteEmptyCellsNotNaN) {
  sim::SimulationSummary summary;
  sim::PeriodMetrics good;
  good.utc_hour = 0.0;
  good.total_demand = 10.0;
  good.servers_per_dc = linalg::Vector{3.0, 2.0};
  good.total_servers = 5.0;
  good.mean_latency_ms = 12.5;
  sim::PeriodMetrics bad = good;
  bad.utc_hour = 1.0;
  bad.sla_compliance = std::nan("");
  bad.mean_latency_ms = std::nan("");
  bad.solved = false;
  summary.periods = {good, bad};

  std::ostringstream out;
  summary.write_csv(out);
  const std::string text = out.str();
  EXPECT_EQ(text.find("nan"), std::string::npos) << text;
  EXPECT_NE(text.find(",,"), std::string::npos) << text;  // the blanked cells
  EXPECT_NE(text.find(",0,"), std::string::npos);         // solved column "0"
}

TEST(SweepArtifactToken, SanitizesPathHostileNames) {
  using scenario::sweep_artifact_token;
  // Clean names pass through untouched (stable artifact names for the
  // common case).
  EXPECT_EQ(sweep_artifact_token("ablation_small-v1.2"),
            sweep_artifact_token("ablation_small-v1.2"));
  EXPECT_EQ(sweep_artifact_token("fig04"), "fig04");
  // Hostile characters are replaced AND the token is disambiguated with a
  // digest of the original, so distinct names can never collide.
  const std::string slash = sweep_artifact_token("a/b");
  const std::string underscore = sweep_artifact_token("a_b");
  EXPECT_EQ(slash.find('/'), std::string::npos);
  EXPECT_NE(slash, underscore);
  EXPECT_NE(sweep_artifact_token("a/b"), sweep_artifact_token("a\\b"));
  // Path tokens and empty names cannot escape or vanish.
  EXPECT_NE(sweep_artifact_token("."), ".");
  EXPECT_NE(sweep_artifact_token(".."), "..");
  EXPECT_FALSE(sweep_artifact_token("").empty());
  EXPECT_EQ(sweep_artifact_token("../../etc/passwd").find('/'), std::string::npos);
}

TEST(SweepRunner, TimelineSidecarsLandInsideTheDirectory) {
  // A slash-containing scenario name must produce a sidecar INSIDE
  // timelines_dir (regression: "exp/v2" once escaped into a subdirectory
  // or collided with "exp_v2").
  auto grid = small_grid();
  grid.scenarios[0].name = "exp/v2";
  grid.policies.resize(1);
  grid.num_seeds = 2;

  const auto dir = std::filesystem::temp_directory_path() / "gp_test_timelines";
  std::filesystem::remove_all(dir);
  scenario::SweepOptions options;
  options.timelines_dir = dir.string();

  obs::TimelineWriter::set_enabled(true);
  const auto result = scenario::SweepRunner(grid, options).run();
  obs::TimelineWriter::set_enabled(false);
  obs::TimelineWriter::local().clear();

  std::vector<std::string> sidecars;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    EXPECT_TRUE(entry.is_regular_file());
    sidecars.push_back(entry.path().filename().string());
  }
  ASSERT_EQ(sidecars.size(), result.runs.size());
  for (const auto& name : sidecars) {
    EXPECT_TRUE(name.ends_with(".timeline.jsonl")) << name;
    EXPECT_EQ(name.find('/'), std::string::npos) << name;
  }
  // Every run captured one frame per period, and the sidecar is
  // manifest-headed columnar JSONL.
  for (const auto& record : result.runs) {
    EXPECT_EQ(record.timeline.size(), static_cast<std::size_t>(grid.scenarios[0].sim.periods));
  }
  std::ifstream in(dir / sidecars.front());
  std::string first_line, second_line;
  ASSERT_TRUE(std::getline(in, first_line));
  ASSERT_TRUE(std::getline(in, second_line));
  EXPECT_TRUE(obs::is_manifest_line(first_line)) << first_line;
  EXPECT_NE(second_line.find("\"type\":\"timeline\""), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(SweepRunner, TimelineRecordingKeepsExportsBitIdentical) {
  // The perf_sweep transparency gate as a fast unit check: arming the
  // timeline (without a sidecar dir) must not change a single digit of the
  // sweep's exports.
  const auto grid = small_grid();
  const std::string off = obs::strip_manifest_lines(jsonl_at(grid, 2));
  obs::TimelineWriter::set_enabled(true);
  const std::string on = obs::strip_manifest_lines(jsonl_at(grid, 2));
  obs::TimelineWriter::set_enabled(false);
  obs::TimelineWriter::local().clear();
  EXPECT_EQ(off, on);
}

TEST(SweepRunner, NoTimelineCaptureWhenDisabledOrNoDir) {
  // Pin the flag: the suite may be running with GEOPLACE_TIMELINE armed
  // (the CI obs-on job does), and this test is about the disabled path.
  const bool was_enabled = obs::TimelineWriter::enabled();
  obs::TimelineWriter::set_enabled(false);

  // timelines_dir without the timeline armed: no capture, no directory.
  auto grid = small_grid();
  grid.policies.resize(1);
  grid.num_seeds = 1;
  const auto dir = std::filesystem::temp_directory_path() / "gp_test_timelines_off";
  std::filesystem::remove_all(dir);
  scenario::SweepOptions options;
  options.timelines_dir = dir.string();
  const auto result = scenario::SweepRunner(grid, options).run();
  for (const auto& record : result.runs) EXPECT_TRUE(record.timeline.empty());
  EXPECT_FALSE(std::filesystem::exists(dir));

  // Timeline armed without a timelines_dir: runs stay lean (no per-record
  // frame copies for a plain sweep).
  obs::TimelineWriter::set_enabled(true);
  const auto result2 = scenario::SweepRunner(grid, {}).run();
  obs::TimelineWriter::set_enabled(was_enabled);
  obs::TimelineWriter::local().clear();
  for (const auto& record : result2.runs) EXPECT_TRUE(record.timeline.empty());
}

}  // namespace
