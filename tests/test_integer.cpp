// Tests for the integer-allocation extension (the paper's future work):
// round-up with capacity repair, and the exact branch-and-bound placement,
// cross-validated against each other and against analytic optima.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dspp/integer.hpp"
#include "dspp/provisioning.hpp"
#include "qp/admm_solver.hpp"
#include "qp/ipm_solver.hpp"

namespace gp::dspp {
namespace {

using linalg::Vector;

DsppModel two_dc_model(double capacity0 = 1000.0, double capacity1 = 1000.0) {
  DsppModel model;
  model.network = topology::NetworkModel({"dc0", "dc1"}, {"an0", "an1"},
                                         {{10.0, 40.0}, {35.0, 12.0}});
  model.sla.mu = 100.0;
  model.sla.max_latency_ms = 100.0;
  model.reconfig_cost = {0.1, 0.1};
  model.capacity = {capacity0, capacity1};
  return model;
}

TEST(RoundUp, CeilsFractionalAllocation) {
  const DsppModel model = two_dc_model();
  const PairIndex pairs(model);
  Vector x(pairs.num_pairs(), 0.0);
  x[0] = 2.3;
  x[1] = 4.0;  // already integral: must stay
  const Vector demand(pairs.num_access_networks(), 0.0);
  const Vector price{0.1, 0.1};
  const auto result = round_up_allocation(model, pairs, x, demand, price);
  ASSERT_TRUE(result.feasible);
  EXPECT_DOUBLE_EQ(result.allocation[0], 3.0);
  EXPECT_DOUBLE_EQ(result.allocation[1], 4.0);
  EXPECT_GE(result.objective, result.continuous_objective);
  EXPECT_GE(result.gap(), 0.0);
}

TEST(RoundUp, PreservesDemandFeasibility) {
  const DsppModel model = two_dc_model();
  const PairIndex pairs(model);
  const Vector demand{700.0, 430.0};
  const Vector price{0.08, 0.05};
  qp::AdmmSolver solver;
  const Vector continuous = min_cost_placement(model, pairs, demand, price, solver);
  const auto result = round_up_allocation(model, pairs, continuous, demand, price);
  ASSERT_TRUE(result.feasible);
  // Integral and demand-feasible.
  for (std::size_t v = 0; v < pairs.num_access_networks(); ++v) {
    double served = 0.0;
    for (const std::size_t p : pairs.pairs_of_access_network(v)) {
      EXPECT_NEAR(result.allocation[p], std::round(result.allocation[p]), 1e-9);
      served += result.allocation[p] / pairs.coefficient(p);
    }
    EXPECT_GE(served, demand[v] - 1e-6);
  }
}

TEST(RoundUp, RepairsCapacityOverrun) {
  // Capacity exactly equal to the continuous optimum: ceiling overflows it,
  // and the repair must floor elsewhere (shifting to the other DC's pairs).
  DsppModel model = two_dc_model();
  const PairIndex pairs(model);
  const Vector demand{700.0, 430.0};
  const Vector price{0.08, 0.05};
  qp::AdmmSolver solver;
  const Vector continuous = min_cost_placement(model, pairs, demand, price, solver);
  // Tighten each capacity to ceil of continuous usage: rounding up all pairs
  // in a DC can exceed it by up to (#pairs - 1).
  for (std::size_t l = 0; l < 2; ++l) {
    double used = 0.0;
    for (const std::size_t p : pairs.pairs_of_datacenter(l)) used += continuous[p];
    model.capacity[l] = std::ceil(used) + 0.5;  // just above the fractional sum
  }
  const PairIndex tight_pairs(model);
  const auto result = round_up_allocation(model, tight_pairs, continuous, demand, price);
  if (result.feasible) {
    for (std::size_t l = 0; l < 2; ++l) {
      double used = 0.0;
      for (const std::size_t p : tight_pairs.pairs_of_datacenter(l)) {
        used += result.allocation[p];
      }
      EXPECT_LE(used, model.capacity[l] + 1e-9);
    }
  }
  // Either repaired within capacity or correctly reported infeasible —
  // never a silent violation (checked above).
}

TEST(RoundUp, ValidatesInputs) {
  const DsppModel model = two_dc_model();
  const PairIndex pairs(model);
  const Vector bad_alloc(pairs.num_pairs() + 1, 0.0);
  EXPECT_THROW(round_up_allocation(model, pairs, bad_alloc, {0.0, 0.0}, {0.1, 0.1}),
               PreconditionError);
  Vector negative(pairs.num_pairs(), 0.0);
  negative[0] = -1.0;
  EXPECT_THROW(round_up_allocation(model, pairs, negative, {0.0, 0.0}, {0.1, 0.1}),
               PreconditionError);
}

TEST(BranchAndBound, MatchesAnalyticOptimumSingleDc) {
  // One DC, one AN: min p*x s.t. x/a >= D, x integer => x = ceil(a D).
  DsppModel model;
  model.network = topology::NetworkModel({"dc0"}, {"an0"}, {{10.0}});
  model.sla.mu = 100.0;
  model.sla.max_latency_ms = 60.0;  // a = 1/80
  model.reconfig_cost = {0.0};
  model.capacity = {100.0};
  const PairIndex pairs(model);
  qp::AdmmSolver solver;
  const auto result =
      solve_integer_placement(model, pairs, {420.0}, {0.07}, solver);  // aD = 5.25
  ASSERT_EQ(result.status, IntegerPlacementResult::Status::kOptimal);
  EXPECT_DOUBLE_EQ(result.allocation[0], 6.0);
  EXPECT_NEAR(result.objective, 0.42, 1e-9);
  EXPECT_LE(result.lower_bound, result.objective + 1e-9);
}

TEST(BranchAndBound, DetectsInfeasibleCapacity) {
  DsppModel model;
  model.network = topology::NetworkModel({"dc0"}, {"an0"}, {{10.0}});
  model.sla.mu = 100.0;
  model.sla.max_latency_ms = 60.0;
  model.reconfig_cost = {0.0};
  model.capacity = {3.0};  // needs ceil(5.25) = 6 servers
  const PairIndex pairs(model);
  qp::AdmmSolver solver;
  const auto result = solve_integer_placement(model, pairs, {420.0}, {0.07}, solver);
  EXPECT_EQ(result.status, IntegerPlacementResult::Status::kInfeasible);
}

TEST(BranchAndBound, BeatsOrMatchesRoundUpOnRandomInstances) {
  Rng rng(4242);
  qp::AdmmSolver solver;
  // Relaxations inside branch-and-bound want high accuracy on tiny LPs:
  // exactly the dense IPM's sweet spot.
  qp::IpmSolver relaxation_solver;
  int optimal_count = 0;
  for (int trial = 0; trial < 6; ++trial) {
    const DsppModel model = two_dc_model(40.0, 40.0);
    const PairIndex pairs(model);
    const Vector demand{rng.uniform(200.0, 900.0), rng.uniform(200.0, 900.0)};
    const Vector price{rng.uniform(0.03, 0.12), rng.uniform(0.03, 0.12)};
    const Vector continuous = min_cost_placement(model, pairs, demand, price, solver);
    const auto rounded = round_up_allocation(model, pairs, continuous, demand, price);
    const auto exact = solve_integer_placement(model, pairs, demand, price, relaxation_solver);
    if (exact.status != IntegerPlacementResult::Status::kOptimal) continue;
    ++optimal_count;
    // Exact optimum can never be worse than the heuristic, and both bound
    // the continuous relaxation from above.
    if (rounded.feasible) {
      EXPECT_LE(exact.objective, rounded.objective + 1e-6) << "trial " << trial;
    }
    EXPECT_GE(exact.objective, rounded.continuous_objective - 1e-5) << "trial " << trial;
    // Integrality + feasibility of the exact solution.
    for (std::size_t v = 0; v < pairs.num_access_networks(); ++v) {
      double served = 0.0;
      for (const std::size_t p : pairs.pairs_of_access_network(v)) {
        EXPECT_NEAR(exact.allocation[p], std::round(exact.allocation[p]), 1e-6);
        served += exact.allocation[p] / pairs.coefficient(p);
      }
      EXPECT_GE(served, demand[v] - 1e-5);
    }
  }
  EXPECT_GE(optimal_count, 4);  // B&B should close most small instances
}

TEST(BranchAndBound, RoundUpGapIsSmallForLargeAllocations) {
  // The paper's relaxation argument: for services needing tens of servers
  // the rounding gap is negligible. Measure it.
  const DsppModel model = two_dc_model();
  const PairIndex pairs(model);
  qp::AdmmSolver solver;
  const Vector demand{5000.0, 3000.0};  // tens of servers per pair
  const Vector price{0.08, 0.05};
  const Vector continuous = min_cost_placement(model, pairs, demand, price, solver);
  const auto rounded = round_up_allocation(model, pairs, continuous, demand, price);
  ASSERT_TRUE(rounded.feasible);
  EXPECT_LT(rounded.gap(), 0.05);  // < 5% for ~20+ server allocations
}

}  // namespace
}  // namespace gp::dspp
