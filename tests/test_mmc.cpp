// Tests for the M/M/c (Erlang) queueing extension.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "queueing/mm1.hpp"
#include "queueing/mmc.hpp"

namespace gp::queueing {
namespace {

TEST(ErlangB, KnownValues) {
  // B(c=0, a) = 1 by definition of the recurrence base.
  EXPECT_DOUBLE_EQ(erlang_b(0, 5.0), 1.0);
  // B(1, a) = a / (1 + a).
  EXPECT_NEAR(erlang_b(1, 2.0), 2.0 / 3.0, 1e-12);
  // Classic table value: B(5, 3) ~= 0.1101.
  EXPECT_NEAR(erlang_b(5, 3.0), 0.1101, 5e-4);
  // Zero load: no blocking with any servers.
  EXPECT_DOUBLE_EQ(erlang_b(3, 0.0), 0.0);
}

TEST(ErlangB, DecreasesWithServers) {
  double previous = 1.0;
  for (std::int64_t c = 1; c <= 20; ++c) {
    const double b = erlang_b(c, 8.0);
    EXPECT_LT(b, previous);
    previous = b;
  }
}

TEST(ErlangC, KnownValuesAndBounds) {
  // C(1, rho) = rho for the single-server queue.
  EXPECT_NEAR(erlang_c(1, 0.7), 0.7, 1e-12);
  // Always a probability; always >= Erlang B at the same point.
  for (std::int64_t c = 1; c <= 10; ++c) {
    const double a = 0.8 * static_cast<double>(c);
    const double probability = erlang_c(c, a);
    EXPECT_GE(probability, erlang_b(c, a));
    EXPECT_GT(probability, 0.0);
    EXPECT_LE(probability, 1.0);
  }
}

TEST(ErlangC, RejectsUnstableLoad) {
  EXPECT_THROW(erlang_c(2, 2.0), PreconditionError);
  EXPECT_THROW(erlang_c(0, 0.5), PreconditionError);
}

TEST(Mmc, SingleServerMatchesMm1) {
  // M/M/1 sojourn: 1 / (mu - lambda). M/M/c with c = 1 must agree.
  const double mu = 10.0;
  for (double lambda : {0.5, 3.0, 7.0, 9.5}) {
    EXPECT_NEAR(mmc_mean_response_time(1, lambda, mu), mean_response_time(mu, lambda), 1e-12)
        << "lambda=" << lambda;
  }
}

TEST(Mmc, ResponseTimeDecreasesWithServers) {
  const double mu = 10.0, lambda = 18.0;
  double previous = std::numeric_limits<double>::infinity();
  for (std::int64_t c = 2; c <= 12; ++c) {
    const double response = mmc_mean_response_time(c, lambda, mu);
    EXPECT_LT(response, previous);
    EXPECT_GT(response, 1.0 / mu);  // never below the bare service time
    previous = response;
  }
}

TEST(Mmc, ZeroLoadIsPureServiceTime) {
  EXPECT_DOUBLE_EQ(mmc_mean_response_time(4, 0.0, 8.0), 1.0 / 8.0);
}

TEST(Mmc, StabilityBoundary) {
  EXPECT_TRUE(mmc_stable(3, 29.9, 10.0));
  EXPECT_FALSE(mmc_stable(3, 30.0, 10.0));
  EXPECT_THROW(mmc_mean_response_time(3, 30.0, 10.0), PreconditionError);
}

TEST(RequiredServers, MmcMeetsBudgetMinimally) {
  const double mu = 100.0, budget = 0.05;
  for (double lambda : {50.0, 500.0, 5000.0}) {
    const auto c = mmc_required_servers(lambda, mu, budget);
    ASSERT_GT(c, 0);
    EXPECT_LE(mmc_mean_response_time(c, lambda, mu), budget);
    if (c > 1 && mmc_stable(c - 1, lambda, mu)) {
      EXPECT_GT(mmc_mean_response_time(c - 1, lambda, mu), budget) << "not minimal";
    }
  }
}

TEST(RequiredServers, InfeasibleBudget) {
  // Budget below the bare service time can never be met.
  EXPECT_EQ(mmc_required_servers(100.0, 10.0, 0.05), -1);
  EXPECT_EQ(mm1_split_required_servers(100.0, 10.0, 0.05), -1);
}

TEST(RequiredServers, SplitRuleMatchesSlaCoefficient) {
  // ceil(a_lv * sigma) with zero network latency equals the split rule.
  const double mu = 100.0, budget = 0.05, lambda = 432.0;
  SlaParams params;
  params.mu = mu;
  params.network_latency = 0.0;
  params.max_latency = budget;
  const double a = sla_coefficient(params);
  EXPECT_EQ(mm1_split_required_servers(lambda, mu, budget),
            static_cast<std::int64_t>(std::ceil(a * lambda - 1e-12)));
}

TEST(RequiredServers, PoolingNeverNeedsMore) {
  const double mu = 100.0, budget = 0.05;
  for (double lambda = 10.0; lambda <= 10000.0; lambda *= 3.0) {
    const auto pooled = mmc_required_servers(lambda, mu, budget);
    const auto split = mm1_split_required_servers(lambda, mu, budget);
    ASSERT_GT(pooled, 0);
    ASSERT_GT(split, 0);
    EXPECT_LE(pooled, split) << "lambda=" << lambda;
  }
}

TEST(RequiredServers, ZeroDemandZeroServers) {
  EXPECT_EQ(mm1_split_required_servers(0.0, 100.0, 0.05), 0);
  // Pooled: needs at least the empty-system service-time check; c = 1 works.
  EXPECT_EQ(mmc_required_servers(0.0, 100.0, 0.05), 1);
}

}  // namespace
}  // namespace gp::queueing
