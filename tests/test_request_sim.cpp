// Tests for the request-level queueing simulation — and, through it,
// empirical validation of the analytic models the controller plans with:
// the M/M/1 mean sojourn, the paper's ln(1/(1-phi)) percentile factor, the
// Erlang-C pooled response time, and the end-to-end SLA evaluation.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "dspp/window_program.hpp"
#include "qp/admm_solver.hpp"
#include "queueing/mm1.hpp"
#include "queueing/mmc.hpp"
#include "sim/request_sim.hpp"

namespace gp::sim {
namespace {

using linalg::Vector;

TEST(RequestSim, SplitMm1MatchesAnalyticMean) {
  Rng rng(1);
  // 4 servers, per-server rho = 0.7: mean sojourn = 1 / (mu - lambda/4).
  const double mu = 50.0, lambda = 140.0;
  const auto result = simulate_split_mm1(lambda, mu, 4, 2000.0, rng);
  ASSERT_GT(result.completed, 100000u);
  const double analytic = queueing::mean_response_time(mu, lambda / 4.0);
  EXPECT_NEAR(result.mean_response, analytic, 0.05 * analytic);
  EXPECT_NEAR(result.utilization, 0.7, 0.02);
}

TEST(RequestSim, PercentileFactorIsEmpiricallyCorrect) {
  // The paper's phi-percentile device: M/M/1 sojourn is exponential, so
  // p95 = ln(20) * mean. Validate against the simulated distribution.
  Rng rng(2);
  const double mu = 40.0, lambda = 28.0;  // rho = 0.7
  const auto result = simulate_split_mm1(lambda, mu, 1, 4000.0, rng);
  const double analytic_mean = queueing::mean_response_time(mu, lambda);
  const double analytic_p95 = queueing::percentile_factor(0.95) * analytic_mean;
  EXPECT_NEAR(result.p95_response, analytic_p95, 0.07 * analytic_p95);
}

TEST(RequestSim, PooledMmcMatchesErlangC) {
  Rng rng(3);
  const double mu = 25.0, lambda = 150.0;
  const int servers = 8;  // offered load 6, rho = 0.75
  const auto result = simulate_pooled_mmc(lambda, mu, servers, 1500.0, rng);
  const double analytic = queueing::mmc_mean_response_time(servers, lambda, mu);
  ASSERT_GT(result.completed, 100000u);
  EXPECT_NEAR(result.mean_response, analytic, 0.05 * analytic);
}

TEST(RequestSim, PoolingBeatsSplitEmpirically) {
  Rng rng(4);
  const double mu = 30.0, lambda = 168.0;
  const int servers = 8;  // per-server rho = 0.7
  const auto split = simulate_split_mm1(lambda, mu, servers, 1500.0, rng);
  const auto pooled = simulate_pooled_mmc(lambda, mu, servers, 1500.0, rng);
  EXPECT_LT(pooled.mean_response, split.mean_response);
  EXPECT_LT(pooled.p95_response, split.p95_response);
}

TEST(RequestSim, EmptySystemProducesNoSamples) {
  Rng rng(5);
  const auto result = simulate_split_mm1(0.0, 10.0, 2, 100.0, rng);
  EXPECT_EQ(result.completed, 0u);
  EXPECT_DOUBLE_EQ(result.utilization, 0.0);
}

TEST(RequestSim, ValidatesInputs) {
  Rng rng(6);
  EXPECT_THROW(simulate_split_mm1(-1.0, 10.0, 1, 10.0, rng), PreconditionError);
  EXPECT_THROW(simulate_split_mm1(1.0, 0.0, 1, 10.0, rng), PreconditionError);
  EXPECT_THROW(simulate_split_mm1(1.0, 10.0, 0, 10.0, rng), PreconditionError);
  EXPECT_THROW(simulate_pooled_mmc(1.0, 10.0, 1, 0.0, rng), PreconditionError);
}

TEST(RequestSim, EndToEndAssignmentMeetsSlaEmpirically) {
  // Solve a window, route the demand, then fire actual requests at the
  // resulting deployment: the empirical violation fraction must be small
  // (requests are exponential, so a few percent sit above the MEAN bound
  // whenever the allocation is near-tight; with a cushion it must be low).
  dspp::DsppModel model;
  model.network = topology::NetworkModel({"dc0", "dc1"}, {"an0", "an1"},
                                         {{10.0, 30.0}, {25.0, 12.0}});
  model.sla.mu = 100.0;
  model.sla.max_latency_ms = 100.0;
  model.sla.reservation_ratio = 1.25;
  model.reconfig_cost = {0.0, 0.0};
  model.capacity = {1000.0, 1000.0};
  const dspp::PairIndex pairs(model);
  dspp::WindowInputs inputs;
  inputs.initial_state.assign(pairs.num_pairs(), 0.0);
  inputs.demand = {Vector{600.0, 450.0}};
  inputs.price = {Vector{0.06, 0.05}};
  const dspp::WindowProgram program(model, pairs, std::move(inputs));
  qp::AdmmSolver solver;
  const auto solution = program.solve(solver);
  ASSERT_TRUE(solution.ok());

  const auto assignment = dspp::assign_demand(pairs, solution.x[0], {600.0, 450.0});
  Rng rng(7);
  const auto report = simulate_assignment(model, pairs, solution.x[0], assignment, 600.0, rng);
  ASSERT_GT(report.simulated_requests, 100000u);
  // The M/M/1 sojourn is exponential, so a MEAN-based bound leaves a tail
  // mass of exp(-(mu - lambda) * budget) above it even when satisfied: with
  // the 1.25 cushion the per-server margin is ~29 req/s against a ~90 ms
  // budget, i.e. ~7% of requests sit above the bound BY DESIGN. The
  // empirical fraction must sit in that analytic ballpark — this is exactly
  // the motivation for the paper's phi-percentile variant.
  EXPECT_GT(report.violating_fraction, 0.02);
  EXPECT_LT(report.violating_fraction, 0.12);
  // The analytic evaluation agrees on the mean within a few percent.
  const auto analytic = dspp::evaluate_sla(model, pairs, solution.x[0], assignment);
  EXPECT_NEAR(report.mean_latency_ms, analytic.mean_latency_ms,
              0.1 * analytic.mean_latency_ms + 1.0);
}

TEST(RequestSim, PercentileSlaSizingBoundsTheTailEmpirically) {
  // Size the SAME deployment with the paper's phi = 95% percentile rule:
  // the empirical fraction of requests above the latency bound must now be
  // at most ~5% (it was ~7% under mean-based sizing with a cushion).
  dspp::DsppModel model;
  model.network = topology::NetworkModel({"dc0", "dc1"}, {"an0", "an1"},
                                         {{10.0, 30.0}, {25.0, 12.0}});
  model.sla.mu = 100.0;
  model.sla.max_latency_ms = 100.0;
  model.sla.percentile = 0.95;
  model.reconfig_cost = {0.0, 0.0};
  model.capacity = {1000.0, 1000.0};
  const dspp::PairIndex pairs(model);
  dspp::WindowInputs inputs;
  inputs.initial_state.assign(pairs.num_pairs(), 0.0);
  inputs.demand = {Vector{600.0, 450.0}};
  inputs.price = {Vector{0.06, 0.05}};
  const dspp::WindowProgram program(model, pairs, std::move(inputs));
  qp::AdmmSolver solver;
  const auto solution = program.solve(solver);
  ASSERT_TRUE(solution.ok());
  const auto assignment = dspp::assign_demand(pairs, solution.x[0], {600.0, 450.0});
  Rng rng(9);
  const auto report = simulate_assignment(model, pairs, solution.x[0], assignment, 600.0, rng);
  ASSERT_GT(report.simulated_requests, 50000u);
  EXPECT_LE(report.violating_fraction, 0.055);
}

TEST(RequestSim, UnderProvisionedDeploymentViolatesEmpirically) {
  dspp::DsppModel model;
  model.network = topology::NetworkModel({"dc0"}, {"an0"}, {{10.0}});
  model.sla.mu = 100.0;
  model.sla.max_latency_ms = 25.0;  // 15 ms queueing budget
  model.reconfig_cost = {0.0};
  model.capacity = {100.0};
  const dspp::PairIndex pairs(model);
  // Allocate fewer servers than the SLA needs: a = 1/(100 - 1000/15) ~ 0.03.
  const Vector demand{300.0};
  Vector allocation{5.0};  // needs ~9
  const auto assignment = dspp::assign_demand(pairs, allocation, demand);
  Rng rng(8);
  const auto report = simulate_assignment(model, pairs, allocation, assignment, 300.0, rng);
  EXPECT_GT(report.violating_fraction, 0.2);
}

}  // namespace
}  // namespace gp::sim
