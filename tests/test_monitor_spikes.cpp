// Tests for the monitoring-statistics module (the paper's Fig. 2 monitor)
// and the Bodik-style random spike generator.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "sim/monitor.hpp"
#include "workload/spikes.hpp"

namespace gp {
namespace {

TEST(Monitor, TracksLevelAndWindowStatistics) {
  sim::Monitor monitor(10, 0.3);
  for (int k = 0; k < 20; ++k) monitor.observe({100.0, 50.0});
  const auto stats0 = monitor.stats(0);
  EXPECT_DOUBLE_EQ(stats0.last, 100.0);
  EXPECT_NEAR(stats0.ewma, 100.0, 1e-9);
  EXPECT_NEAR(stats0.window_mean, 100.0, 1e-9);
  EXPECT_NEAR(stats0.window_p95, 100.0, 1e-9);
  EXPECT_NEAR(stats0.trend_per_period, 0.0, 1e-9);
  EXPECT_EQ(stats0.observations, 20u);
  const auto total = monitor.total_stats();
  EXPECT_NEAR(total.window_mean, 150.0, 1e-9);
}

TEST(Monitor, TrendDetectsLinearGrowth) {
  sim::Monitor monitor(12, 0.2);
  for (int k = 0; k < 12; ++k) monitor.observe({10.0 + 3.0 * k});
  EXPECT_NEAR(monitor.stats(0).trend_per_period, 3.0, 1e-9);
  sim::Monitor falling(12, 0.2);
  for (int k = 0; k < 12; ++k) falling.observe({100.0 - 5.0 * k});
  EXPECT_NEAR(falling.stats(0).trend_per_period, -5.0, 1e-9);
}

TEST(Monitor, WindowSlidesAndForgetsOldData) {
  sim::Monitor monitor(4, 0.5);
  for (double v : {1000.0, 1000.0, 1000.0, 2.0, 2.0, 2.0, 2.0}) monitor.observe({v});
  // The window holds only the last 4 observations (all 2.0).
  EXPECT_NEAR(monitor.stats(0).window_mean, 2.0, 1e-9);
  EXPECT_NEAR(monitor.stats(0).window_max, 2.0, 1e-9);
}

TEST(Monitor, P95ReflectsTail) {
  sim::Monitor monitor(40, 0.2);
  for (int k = 0; k < 37; ++k) monitor.observe({10.0});
  monitor.observe({90.0});
  monitor.observe({95.0});
  monitor.observe({100.0});
  const auto stats = monitor.stats(0);
  EXPECT_GT(stats.window_p95, 50.0);
  EXPECT_LT(stats.window_mean, 20.0);
}

TEST(Monitor, ValidatesUse) {
  EXPECT_THROW(sim::Monitor(1), PreconditionError);
  EXPECT_THROW(sim::Monitor(10, 1.0), PreconditionError);
  sim::Monitor monitor(4, 0.2);
  monitor.observe({1.0, 2.0});
  EXPECT_THROW(monitor.observe({1.0}), PreconditionError);
  EXPECT_THROW(monitor.stats(5), PreconditionError);
}

TEST(Spikes, GeneratedEventsAreWellFormed) {
  Rng rng(5);
  workload::SpikeParams params;
  params.spikes_per_day = 3.0;
  const auto events = workload::generate_spikes(6, 10.0, params, rng);
  ASSERT_GT(events.size(), 5u);  // ~30 events expected over 10 days
  for (const auto& event : events) {
    EXPECT_LT(event.access_network, 6u);
    EXPECT_GE(event.start_hour, 0.0);
    EXPECT_LT(event.start_hour, 240.0);
    EXPECT_GE(event.duration_hours, params.duration_min_hours);
    EXPECT_LE(event.duration_hours, params.duration_max_hours);
    EXPECT_GT(event.multiplier, 1.0);
  }
}

TEST(Spikes, RateControlsEventCount) {
  Rng rng_low(7), rng_high(7);
  workload::SpikeParams low;
  low.spikes_per_day = 0.5;
  workload::SpikeParams high = low;
  high.spikes_per_day = 8.0;
  const auto few = workload::generate_spikes(4, 20.0, low, rng_low);
  const auto many = workload::generate_spikes(4, 20.0, high, rng_high);
  EXPECT_LT(few.size(), many.size());
  Rng rng_zero(7);
  workload::SpikeParams off = low;
  off.spikes_per_day = 0.0;
  EXPECT_TRUE(workload::generate_spikes(4, 20.0, off, rng_zero).empty());
}

TEST(Spikes, MagnitudesHaveHeavyUpperTail) {
  Rng rng(11);
  workload::SpikeParams params;
  params.spikes_per_day = 20.0;
  const auto events = workload::generate_spikes(3, 50.0, params, rng);
  ASSERT_GT(events.size(), 300u);
  double max_multiplier = 0.0;
  double median_count = 0.0;
  for (const auto& event : events) {
    max_multiplier = std::max(max_multiplier, event.multiplier);
    if (event.multiplier < params.magnitude_median) median_count += 1.0;
  }
  // Roughly half below the median; some events far above it.
  EXPECT_NEAR(median_count / static_cast<double>(events.size()), 0.5, 0.12);
  EXPECT_GT(max_multiplier, 2.0 * params.magnitude_median);
}

TEST(Spikes, InstallIntoDemandModelRaisesRates) {
  workload::DemandModel demand(
      {{100.0, 0, workload::DiurnalProfile(1.0, 1.0)},
       {100.0, 0, workload::DiurnalProfile(1.0, 1.0)}});
  Rng rng(13);
  workload::SpikeParams params;
  params.spikes_per_day = 12.0;
  workload::add_random_spikes(demand, 2.0, params, rng);
  // At least one hour across the horizon sees elevated demand somewhere.
  bool elevated = false;
  for (double hour = 0.0; hour < 48.0; hour += 0.25) {
    for (std::size_t v = 0; v < 2; ++v) {
      elevated = elevated || demand.mean_rate(v, hour) > 101.0;
    }
  }
  EXPECT_TRUE(elevated);
}

TEST(Spikes, ValidatesParameters) {
  Rng rng(1);
  workload::SpikeParams params;
  params.magnitude_median = 0.9;
  EXPECT_THROW(workload::generate_spikes(2, 1.0, params, rng), PreconditionError);
  params = {};
  params.duration_min_hours = 2.0;
  params.duration_max_hours = 1.0;
  EXPECT_THROW(workload::generate_spikes(2, 1.0, params, rng), PreconditionError);
}

}  // namespace
}  // namespace gp
