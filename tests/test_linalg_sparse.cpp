// Tests for sparse linear algebra: CSC construction and kernels, orderings,
// and the sparse LDL^T factorization (including quasi-definite KKT systems,
// the exact shape the ADMM solver factors).
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "linalg/dense_factor.hpp"
#include "linalg/ordering.hpp"
#include "linalg/sparse_ldlt.hpp"
#include "linalg/sparse_matrix.hpp"

namespace gp::linalg {
namespace {

SparseMatrix random_sparse(std::int32_t rows, std::int32_t cols, double density, Rng& rng) {
  std::vector<Triplet> triplets;
  for (std::int32_t r = 0; r < rows; ++r)
    for (std::int32_t c = 0; c < cols; ++c)
      if (rng.uniform() < density) triplets.push_back({r, c, rng.uniform(-1.0, 1.0)});
  return SparseMatrix::from_triplets(rows, cols, triplets);
}

/// Builds a random symmetric quasi-definite KKT matrix
/// [[P + I, A^T], [A, -I]] and returns its upper triangle.
SparseMatrix random_kkt_upper(std::int32_t n, std::int32_t m, Rng& rng, double density = 0.3) {
  std::vector<Triplet> triplets;
  for (std::int32_t i = 0; i < n; ++i) triplets.push_back({i, i, 1.0 + rng.uniform()});
  for (std::int32_t i = 0; i < m; ++i) triplets.push_back({n + i, n + i, -1.0 - rng.uniform()});
  for (std::int32_t r = 0; r < m; ++r)
    for (std::int32_t c = 0; c < n; ++c)
      if (rng.uniform() < density) triplets.push_back({c, n + r, rng.uniform(-1.0, 1.0)});
  return SparseMatrix::from_triplets(n + m, n + m, triplets);
}

/// Expands an upper triangle to the full symmetric dense matrix.
DenseMatrix full_from_upper(const SparseMatrix& upper) {
  DenseMatrix d = upper.to_dense();
  for (std::size_t r = 0; r < d.rows(); ++r)
    for (std::size_t c = r + 1; c < d.cols(); ++c) d(c, r) = d(r, c);
  return d;
}

TEST(SparseMatrix, FromTripletsSumsDuplicates) {
  const std::vector<Triplet> triplets{{0, 0, 1.0}, {0, 0, 2.0}, {1, 1, 5.0}};
  const auto a = SparseMatrix::from_triplets(2, 2, triplets);
  EXPECT_EQ(a.nnz(), 2);
  EXPECT_DOUBLE_EQ(a.coefficient(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(a.coefficient(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(a.coefficient(0, 1), 0.0);
}

TEST(SparseMatrix, FromTripletsRejectsOutOfRange) {
  const std::vector<Triplet> bad{{2, 0, 1.0}};
  EXPECT_THROW(SparseMatrix::from_triplets(2, 2, bad), PreconditionError);
}

TEST(SparseMatrix, EmptyColumnsHaveValidPointers) {
  const std::vector<Triplet> triplets{{0, 3, 1.0}};
  const auto a = SparseMatrix::from_triplets(2, 5, triplets);
  EXPECT_EQ(a.nnz(), 1);
  const auto ptr = a.col_ptr();
  for (std::size_t c = 1; c < ptr.size(); ++c) EXPECT_GE(ptr[c], ptr[c - 1]);
  EXPECT_DOUBLE_EQ(a.coefficient(0, 3), 1.0);
}

TEST(SparseMatrix, MultiplyMatchesDense) {
  Rng rng(3);
  const auto a = random_sparse(6, 9, 0.4, rng);
  Vector x(9);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  const Vector sparse_y = a.multiply(x);
  const Vector dense_y = a.to_dense().multiply(x);
  for (std::size_t i = 0; i < sparse_y.size(); ++i) EXPECT_NEAR(sparse_y[i], dense_y[i], 1e-14);
}

TEST(SparseMatrix, TransposedMultiplyMatchesDense) {
  Rng rng(4);
  const auto a = random_sparse(6, 9, 0.4, rng);
  Vector x(6);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  const Vector sparse_y = a.multiply_transposed(x);
  const Vector dense_y = a.to_dense().multiply_transposed(x);
  for (std::size_t i = 0; i < sparse_y.size(); ++i) EXPECT_NEAR(sparse_y[i], dense_y[i], 1e-14);
}

TEST(SparseMatrix, TransposeRoundTrip) {
  Rng rng(5);
  const auto a = random_sparse(7, 5, 0.3, rng);
  const auto att = a.transposed().transposed();
  EXPECT_EQ(att.nnz(), a.nnz());
  for (std::int32_t r = 0; r < 7; ++r)
    for (std::int32_t c = 0; c < 5; ++c)
      EXPECT_DOUBLE_EQ(a.coefficient(r, c), att.coefficient(r, c));
}

TEST(SparseMatrix, ProductMatchesDense) {
  Rng rng(6);
  const auto a = random_sparse(4, 6, 0.5, rng);
  const auto b = random_sparse(6, 3, 0.5, rng);
  const auto ab = a.multiply(b);
  const DenseMatrix dense_ab = a.to_dense() * b.to_dense();
  for (std::int32_t r = 0; r < 4; ++r)
    for (std::int32_t c = 0; c < 3; ++c)
      EXPECT_NEAR(ab.coefficient(r, c), dense_ab(static_cast<std::size_t>(r),
                                                 static_cast<std::size_t>(c)),
                  1e-14);
}

TEST(SparseMatrix, UpperTriangleKeepsDiagonal) {
  Rng rng(7);
  auto a = random_sparse(5, 5, 0.6, rng);
  const auto upper = a.upper_triangle();
  for (std::int32_t r = 0; r < 5; ++r)
    for (std::int32_t c = 0; c < 5; ++c) {
      if (r <= c) {
        EXPECT_DOUBLE_EQ(upper.coefficient(r, c), a.coefficient(r, c));
      } else {
        EXPECT_DOUBLE_EQ(upper.coefficient(r, c), 0.0);
      }
    }
}

TEST(SparseMatrix, ScaleRowsCols) {
  const std::vector<Triplet> triplets{{0, 0, 2.0}, {1, 1, 3.0}, {0, 1, 1.0}};
  auto a = SparseMatrix::from_triplets(2, 2, triplets);
  const Vector row_scale{2.0, 4.0};
  const Vector col_scale{10.0, 100.0};
  a.scale_rows_cols(row_scale, col_scale);
  EXPECT_DOUBLE_EQ(a.coefficient(0, 0), 40.0);
  EXPECT_DOUBLE_EQ(a.coefficient(0, 1), 200.0);
  EXPECT_DOUBLE_EQ(a.coefficient(1, 1), 1200.0);
}

TEST(SparseMatrix, InfNorms) {
  const std::vector<Triplet> triplets{{0, 0, -2.0}, {1, 0, 1.0}, {1, 2, 5.0}};
  const auto a = SparseMatrix::from_triplets(2, 3, triplets);
  const Vector col_norms = a.column_inf_norms();
  EXPECT_DOUBLE_EQ(col_norms[0], 2.0);
  EXPECT_DOUBLE_EQ(col_norms[1], 0.0);
  EXPECT_DOUBLE_EQ(col_norms[2], 5.0);
  const Vector row_norms = a.row_inf_norms();
  EXPECT_DOUBLE_EQ(row_norms[0], 2.0);
  EXPECT_DOUBLE_EQ(row_norms[1], 5.0);
}

TEST(Ordering, IdentityAndInverseRoundTrip) {
  const auto id = identity_permutation(5);
  for (std::int32_t i = 0; i < 5; ++i) EXPECT_EQ(id[static_cast<std::size_t>(i)], i);
  Permutation perm{3, 1, 4, 0, 2};
  const auto inv = invert_permutation(perm);
  for (std::size_t i = 0; i < perm.size(); ++i) {
    EXPECT_EQ(inv[static_cast<std::size_t>(perm[i])], static_cast<std::int32_t>(i));
  }
}

TEST(Ordering, MinimumDegreeIsAPermutation) {
  Rng rng(8);
  const auto upper = random_kkt_upper(10, 6, rng);
  const auto perm = minimum_degree_ordering(upper);
  ASSERT_EQ(perm.size(), 16u);
  std::vector<bool> seen(16, false);
  for (std::int32_t p : perm) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, 16);
    EXPECT_FALSE(seen[static_cast<std::size_t>(p)]);
    seen[static_cast<std::size_t>(p)] = true;
  }
}

TEST(Ordering, ArrowheadMatrixOrdersHubLast) {
  // Arrowhead: dense first row/column. Min-degree must defer the hub (0),
  // which keeps L fill-free; eliminating the hub first fills everything.
  const std::int32_t n = 12;
  std::vector<Triplet> triplets;
  for (std::int32_t i = 0; i < n; ++i) triplets.push_back({i, i, 4.0});
  for (std::int32_t i = 1; i < n; ++i) triplets.push_back({0, i, 1.0});
  const auto upper = SparseMatrix::from_triplets(n, n, triplets);
  const auto perm = minimum_degree_ordering(upper);
  // The hub must be eliminated once only degree-1 vertices remain (it can
  // tie with the final leaf, so allow the last two slots).
  EXPECT_TRUE(perm.back() == 0 || perm[perm.size() - 2] == 0);
  SparseLdlt ldlt;
  ASSERT_EQ(ldlt.factor(upper, perm), SparseLdlt::Status::kOk);
  // Fill-free: L has exactly the n-1 off-diagonal entries of the arrow.
  EXPECT_EQ(ldlt.l_nnz(), n - 1);
}

TEST(Ordering, SymmetricPermuteUpperPreservesMatrix) {
  Rng rng(9);
  const auto upper = random_kkt_upper(6, 4, rng);
  const Permutation perm = minimum_degree_ordering(upper);
  const auto permuted = symmetric_permute_upper(upper, perm);
  const DenseMatrix full = full_from_upper(upper);
  const DenseMatrix permuted_full = full_from_upper(permuted);
  const auto inv = invert_permutation(perm);
  for (std::size_t r = 0; r < full.rows(); ++r)
    for (std::size_t c = 0; c < full.cols(); ++c) {
      EXPECT_NEAR(permuted_full(static_cast<std::size_t>(inv[r]),
                                static_cast<std::size_t>(inv[c])),
                  full(r, c), 1e-15);
    }
}

TEST(Ordering, PermuteVectorsRoundTrip) {
  const Permutation perm{2, 0, 1};
  const Vector x{10.0, 20.0, 30.0};
  const Vector forward = permute(x, perm);
  EXPECT_DOUBLE_EQ(forward[0], 30.0);
  const Vector back = permute_inverse(forward, perm);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(back[i], x[i]);
}

class SparseLdltSizeTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SparseLdltSizeTest, SolvesRandomQuasiDefiniteKkt) {
  const auto [n, m] = GetParam();
  Rng rng(200 + static_cast<std::uint64_t>(n * 31 + m));
  const auto upper = random_kkt_upper(n, m, rng);
  SparseLdlt ldlt;
  ASSERT_EQ(ldlt.factor(upper), SparseLdlt::Status::kOk);
  Vector b(static_cast<std::size_t>(n + m));
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  const Vector x = ldlt.solve(b);
  const DenseMatrix full = full_from_upper(upper);
  const Vector ax = full.multiply(x);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(ax[i], b[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Shapes, SparseLdltSizeTest,
                         ::testing::Values(std::pair{1, 1}, std::pair{5, 3}, std::pair{10, 10},
                                           std::pair{40, 25}, std::pair{80, 60},
                                           std::pair{150, 100}));

TEST(SparseLdlt, InertiaMatchesQuasiDefiniteBlocks) {
  Rng rng(10);
  const std::int32_t n = 12, m = 8;
  const auto upper = random_kkt_upper(n, m, rng);
  SparseLdlt ldlt;
  ASSERT_EQ(ldlt.factor(upper), SparseLdlt::Status::kOk);
  int positives = 0, negatives = 0;
  for (double d : ldlt.d()) (d > 0 ? positives : negatives)++;
  EXPECT_EQ(positives, n);
  EXPECT_EQ(negatives, m);
}

TEST(SparseLdlt, RefactorWithSamePatternMatchesFreshFactor) {
  Rng rng(11);
  auto upper = random_kkt_upper(10, 6, rng);
  SparseLdlt ldlt;
  ASSERT_EQ(ldlt.factor(upper), SparseLdlt::Status::kOk);
  // Change values, keep the pattern.
  for (double& v : upper.mutable_values()) v *= 1.5;
  ASSERT_EQ(ldlt.refactor(upper), SparseLdlt::Status::kOk);
  Vector b(16);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  const Vector x = ldlt.solve(b);
  const Vector ax = full_from_upper(upper).multiply(x);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(ax[i], b[i], 1e-8);
}

TEST(SparseLdlt, DetectsZeroPivot) {
  // Symmetric singular matrix: [[1, 1], [1, 1]].
  const std::vector<Triplet> triplets{{0, 0, 1.0}, {0, 1, 1.0}, {1, 1, 1.0}};
  const auto upper = SparseMatrix::from_triplets(2, 2, triplets);
  SparseLdlt ldlt;
  EXPECT_EQ(ldlt.factor(upper, identity_permutation(2)), SparseLdlt::Status::kZeroPivot);
}

TEST(SparseLdlt, SolveBeforeFactorThrows) {
  SparseLdlt ldlt;
  Vector b{1.0};
  EXPECT_THROW(ldlt.solve_in_place(b), PreconditionError);
}

TEST(SparseLdlt, AgreesWithDenseLdltOnDiagonal) {
  // Tridiagonal SPD matrix solved both sparse and dense.
  const std::int32_t n = 30;
  std::vector<Triplet> triplets;
  for (std::int32_t i = 0; i < n; ++i) {
    triplets.push_back({i, i, 4.0});
    if (i + 1 < n) triplets.push_back({i, i + 1, -1.0});
  }
  const auto upper = SparseMatrix::from_triplets(n, n, triplets);
  SparseLdlt sparse;
  ASSERT_EQ(sparse.factor(upper), SparseLdlt::Status::kOk);
  Ldlt dense;
  ASSERT_EQ(dense.factor(full_from_upper(upper)), FactorStatus::kOk);
  Rng rng(12);
  Vector b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  const Vector xs = sparse.solve(b);
  const Vector xd = dense.solve(b);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(xs[i], xd[i], 1e-10);
}

}  // namespace
}  // namespace gp::linalg
