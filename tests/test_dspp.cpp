// Tests for the DSPP core: model validation, SLA pair indexing, the window
// program (feasibility, optimality structure, duals, soft slacks), and the
// request-router assignment policy of eq. (13).
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "dspp/assignment.hpp"
#include "dspp/window_program.hpp"
#include "qp/admm_solver.hpp"
#include "qp/ipm_solver.hpp"

namespace gp::dspp {
namespace {

using linalg::Vector;

/// Two data centers, two access networks. DC0 is close to AN0 and far from
/// AN1 beyond SLA reach; DC1 reaches both.
DsppModel two_dc_model() {
  DsppModel model;
  model.network = topology::NetworkModel(
      {"dc0", "dc1"}, {"an0", "an1"},
      {{10.0, 500.0},    // dc0: an1 unreachable under a 100 ms SLA
       {20.0, 30.0}});
  model.sla.mu = 100.0;
  model.sla.max_latency_ms = 100.0;
  model.reconfig_cost = {1.0, 1.0};
  model.capacity = {1000.0, 1000.0};
  return model;
}

/// Single DC / single AN toy (the paper's Fig. 4 setting).
DsppModel single_model(double reconfig_cost = 1.0) {
  DsppModel model;
  model.network = topology::NetworkModel({"dc0"}, {"an0"}, {{10.0}});
  model.sla.mu = 100.0;
  model.sla.max_latency_ms = 60.0;
  model.reconfig_cost = {reconfig_cost};
  model.capacity = {10000.0};
  return model;
}

TEST(DsppModel, ValidateCatchesBadShapes) {
  DsppModel model = two_dc_model();
  model.reconfig_cost = {1.0};
  EXPECT_THROW(model.validate(), PreconditionError);
  model = two_dc_model();
  model.capacity = {0.0, 10.0};
  EXPECT_THROW(model.validate(), PreconditionError);
  model = two_dc_model();
  model.sla.reservation_ratio = 0.5;
  EXPECT_THROW(model.validate(), PreconditionError);
}

TEST(DsppModel, SlaCoefficientMatchesEquation10) {
  const DsppModel model = single_model();
  // budget = (60 - 10) ms = 0.05 s; a = 1 / (100 - 1/0.05) = 1/80.
  EXPECT_NEAR(model.sla_coefficient(0, 0), 1.0 / 80.0, 1e-12);
}

TEST(PairIndex, ExcludesInfeasiblePairs) {
  const DsppModel model = two_dc_model();
  const PairIndex pairs(model);
  EXPECT_EQ(pairs.num_pairs(), 3u);  // (0,0), (1,0), (1,1)
  EXPECT_TRUE(pairs.pair_of(0, 0).has_value());
  EXPECT_FALSE(pairs.pair_of(0, 1).has_value());
  EXPECT_TRUE(pairs.pair_of(1, 1).has_value());
  EXPECT_EQ(pairs.pairs_of_access_network(1).size(), 1u);
  EXPECT_EQ(pairs.pairs_of_datacenter(1).size(), 2u);
}

TEST(PairIndex, ThrowsWhenAccessNetworkUnservable) {
  DsppModel model = two_dc_model();
  model.sla.max_latency_ms = 15.0;  // only dc0-an0 remains; an1 unservable
  EXPECT_THROW(PairIndex{model}, PreconditionError);
}

TEST(DsppModel, PerPairLatencyOverride) {
  DsppModel model = two_dc_model();
  const double base_a_00 = model.sla_coefficient(0, 0);
  // Tighten the (0,0) bound only: its coefficient grows, others unchanged.
  model.max_latency_override_ms = {{40.0, 0.0}, {0.0, 0.0}};
  EXPECT_NO_THROW(model.validate());
  EXPECT_DOUBLE_EQ(model.max_latency_ms_for(0, 0), 40.0);
  EXPECT_DOUBLE_EQ(model.max_latency_ms_for(1, 1), model.sla.max_latency_ms);
  EXPECT_GT(model.sla_coefficient(0, 0), base_a_00);
  EXPECT_DOUBLE_EQ(model.sla_coefficient(1, 1), two_dc_model().sla_coefficient(1, 1));
  // An override so tight that the pair becomes unusable drops it from the
  // index.
  model.max_latency_override_ms[0][0] = 10.0;  // equals the network latency
  const PairIndex pairs(model);
  EXPECT_FALSE(pairs.pair_of(0, 0).has_value());
  // Malformed override shapes are rejected.
  model.max_latency_override_ms = {{40.0}};
  EXPECT_THROW(model.validate(), PreconditionError);
}

TEST(PairIndex, ReservationRatioScalesCoefficients) {
  DsppModel model = single_model();
  const PairIndex base(model);
  model.sla.reservation_ratio = 1.5;
  const PairIndex cushioned(model);
  EXPECT_NEAR(cushioned.coefficient(0), 1.5 * base.coefficient(0), 1e-12);
}

TEST(WindowProgram, SingleStepMatchesAnalyticOptimum) {
  // One DC, one AN, one step, price only (no reconfig cost): the optimum is
  // exactly a * D servers.
  DsppModel model = single_model(0.0);
  const PairIndex pairs(model);
  WindowInputs inputs;
  inputs.initial_state = {0.0};
  inputs.demand = {Vector{400.0}};
  inputs.price = {Vector{0.05}};
  const WindowProgram program(model, pairs, std::move(inputs));
  qp::AdmmSolver solver;
  const WindowSolution solution = program.solve(solver);
  ASSERT_TRUE(solution.ok());
  const double expected = 400.0 / 80.0;  // a * D = 5
  EXPECT_NEAR(solution.x[0][0], expected, 1e-3);
  EXPECT_NEAR(solution.objective, 0.05 * expected, 1e-4);
}

TEST(WindowProgram, ReconfigCostSmoothsTrajectory) {
  // Demand spike in the middle of the window: with a large c the allocation
  // moves less per step than with c = 0.
  auto churn_for = [&](double c) {
    DsppModel model = single_model(c);
    const PairIndex pairs(model);
    WindowInputs inputs;
    inputs.initial_state = {5.0};
    inputs.demand = {Vector{400.0}, Vector{1600.0}, Vector{400.0}};
    inputs.price = {Vector{0.05}, Vector{0.05}, Vector{0.05}};
    const WindowProgram program(model, pairs, std::move(inputs));
    qp::AdmmSolver solver;
    const WindowSolution solution = program.solve(solver);
    EXPECT_TRUE(solution.ok());
    double churn = 0.0;
    for (const auto& u : solution.u) churn += std::abs(u[0]);
    return churn;
  };
  EXPECT_LT(churn_for(10.0), churn_for(0.0));
}

TEST(WindowProgram, PriceDifferenceShiftsAllocation) {
  // Both DCs can serve AN0; the cheaper DC should carry (almost) all load.
  DsppModel model = two_dc_model();
  model.reconfig_cost = {0.0, 0.0};
  const PairIndex pairs(model);
  WindowInputs inputs;
  inputs.initial_state.assign(pairs.num_pairs(), 0.0);
  inputs.demand = {Vector{500.0, 300.0}};
  inputs.price = {Vector{0.20, 0.05}};  // dc1 is 4x cheaper
  const WindowProgram program(model, pairs, std::move(inputs));
  qp::AdmmSolver solver;
  const WindowSolution solution = program.solve(solver);
  ASSERT_TRUE(solution.ok());
  const std::size_t pair_00 = *pairs.pair_of(0, 0);
  const std::size_t pair_10 = *pairs.pair_of(1, 0);
  EXPECT_LT(solution.x[0][pair_00], 0.05 * solution.x[0][pair_10]);
}

TEST(WindowProgram, CapacityBindsAndDualIsPositive) {
  DsppModel model = single_model(0.0);
  model.capacity = {4.0};  // need a*D = 5 > 4: infeasible hard...
  const PairIndex pairs(model);
  // ... so use soft demand to observe the binding capacity and its dual.
  WindowInputs inputs;
  inputs.initial_state = {0.0};
  inputs.demand = {Vector{400.0}};
  inputs.price = {Vector{0.05}};
  inputs.soft_demand_penalty = 10.0;
  const WindowProgram program(model, pairs, std::move(inputs));
  qp::AdmmSolver solver;
  const WindowSolution solution = program.solve(solver);
  ASSERT_TRUE(solution.ok());
  EXPECT_NEAR(solution.x[0][0], 4.0, 1e-3);              // pinned at capacity
  EXPECT_GT(solution.unserved[0][0], 0.0);               // some demand dropped
  EXPECT_GT(solution.capacity_duals[0][0], 1e-4);        // binding => positive price
  EXPECT_GT(solution.capacity_price()[0], 1e-4);
}

TEST(WindowProgram, HardInfeasibleQuotaReportsInfeasible) {
  DsppModel model = single_model(0.0);
  model.capacity = {4.0};
  const PairIndex pairs(model);
  WindowInputs inputs;
  inputs.initial_state = {0.0};
  inputs.demand = {Vector{400.0}};  // needs 5 servers
  inputs.price = {Vector{0.05}};
  const WindowProgram program(model, pairs, std::move(inputs));
  qp::AdmmSolver solver;
  const WindowSolution solution = program.solve(solver);
  EXPECT_EQ(solution.status, qp::SolveStatus::kPrimalInfeasible);
}

TEST(WindowProgram, StateEquationHoldsAcrossWindow) {
  DsppModel model = single_model(2.0);
  const PairIndex pairs(model);
  WindowInputs inputs;
  inputs.initial_state = {3.0};
  inputs.demand = {Vector{200.0}, Vector{300.0}, Vector{250.0}, Vector{100.0}};
  inputs.price = {Vector{0.05}, Vector{0.06}, Vector{0.04}, Vector{0.05}};
  const WindowProgram program(model, pairs, inputs);
  qp::AdmmSolver solver;
  const WindowSolution solution = program.solve(solver);
  ASSERT_TRUE(solution.ok());
  double x_prev = 3.0;
  for (std::size_t t = 0; t < 4; ++t) {
    EXPECT_NEAR(solution.x[t][0], x_prev + solution.u[t][0], 2e-3);
    x_prev = solution.x[t][0];
    // Demand constraint: x / a >= D.
    EXPECT_GE(solution.x[t][0] / pairs.coefficient(0), inputs.demand[t][0] - 0.5);
  }
}

TEST(WindowProgram, AdmmAndIpmAgreeOnWindow) {
  DsppModel model = two_dc_model();
  const PairIndex pairs(model);
  WindowInputs inputs;
  inputs.initial_state.assign(pairs.num_pairs(), 2.0);
  inputs.demand = {Vector{300.0, 200.0}, Vector{500.0, 350.0}, Vector{200.0, 100.0}};
  inputs.price = {Vector{0.05, 0.08}, Vector{0.07, 0.05}, Vector{0.06, 0.06}};
  const WindowProgram program(model, pairs, inputs);
  qp::AdmmSolver admm;
  qp::IpmSolver ipm;
  const WindowSolution sa = program.solve(admm);
  const WindowSolution si = program.solve(ipm);
  ASSERT_TRUE(sa.ok());
  ASSERT_TRUE(si.ok());
  EXPECT_NEAR(sa.objective, si.objective, 1e-3 * (1.0 + std::abs(si.objective)));
  for (std::size_t t = 0; t < 3; ++t) {
    for (std::size_t p = 0; p < pairs.num_pairs(); ++p) {
      EXPECT_NEAR(sa.x[t][p], si.x[t][p], 2e-2) << "t=" << t << " p=" << p;
    }
  }
}

TEST(WindowProgram, ValidatesInputShapes) {
  DsppModel model = single_model();
  const PairIndex pairs(model);
  WindowInputs inputs;
  inputs.initial_state = {0.0};
  inputs.demand = {Vector{1.0}};
  inputs.price = {};  // horizon mismatch
  EXPECT_THROW(WindowProgram(model, pairs, inputs), PreconditionError);
  inputs.price = {Vector{0.05}};
  inputs.demand = {Vector{-1.0}};  // negative demand
  EXPECT_THROW(WindowProgram(model, pairs, inputs), PreconditionError);
  inputs.demand = {Vector{1.0}};
  inputs.initial_state = {0.0, 0.0};  // wrong state size
  EXPECT_THROW(WindowProgram(model, pairs, inputs), PreconditionError);
}

TEST(Assignment, SplitsProportionallyToXOverA) {
  const DsppModel model = two_dc_model();
  const PairIndex pairs(model);
  Vector allocation(pairs.num_pairs(), 0.0);
  const std::size_t p00 = *pairs.pair_of(0, 0);
  const std::size_t p10 = *pairs.pair_of(1, 0);
  const std::size_t p11 = *pairs.pair_of(1, 1);
  allocation[p00] = 6.0;
  allocation[p10] = 3.0;
  allocation[p11] = 2.0;
  const Vector demand{900.0, 100.0};
  const Assignment assignment = assign_demand(pairs, allocation, demand);
  // Weights: x/a; shares must sum to demand.
  EXPECT_NEAR(assignment.rate[p00] + assignment.rate[p10], 900.0, 1e-9);
  EXPECT_NEAR(assignment.rate[p11], 100.0, 1e-9);
  const double w00 = 6.0 / pairs.coefficient(p00);
  const double w10 = 3.0 / pairs.coefficient(p10);
  EXPECT_NEAR(assignment.rate[p00], 900.0 * w00 / (w00 + w10), 1e-9);
  EXPECT_DOUBLE_EQ(assignment.total_unserved(), 0.0);
}

TEST(Assignment, ZeroAllocationIsUnserved) {
  const DsppModel model = two_dc_model();
  const PairIndex pairs(model);
  const Vector allocation(pairs.num_pairs(), 0.0);
  const Assignment assignment = assign_demand(pairs, allocation, Vector{50.0, 70.0});
  EXPECT_DOUBLE_EQ(assignment.unserved[0], 50.0);
  EXPECT_DOUBLE_EQ(assignment.unserved[1], 70.0);
  EXPECT_DOUBLE_EQ(assignment.total_unserved(), 120.0);
}

TEST(Assignment, SlaMetWhenConstraint12Holds) {
  // Allocate exactly the minimum required by eq. (12); every pair's mean
  // latency must sit at or below the SLA bound (property behind eq. (13)).
  const DsppModel model = two_dc_model();
  const PairIndex pairs(model);
  const Vector demand{800.0, 400.0};
  Vector allocation(pairs.num_pairs(), 0.0);
  // Serve AN0 from both DCs (half each), AN1 from DC1.
  const std::size_t p00 = *pairs.pair_of(0, 0);
  const std::size_t p10 = *pairs.pair_of(1, 0);
  const std::size_t p11 = *pairs.pair_of(1, 1);
  allocation[p00] = pairs.coefficient(p00) * 400.0;
  allocation[p10] = pairs.coefficient(p10) * 400.0;
  allocation[p11] = pairs.coefficient(p11) * 400.0;
  const Assignment assignment = assign_demand(pairs, allocation, demand);
  const SlaReport report = evaluate_sla(model, pairs, allocation, assignment);
  EXPECT_LE(report.worst_latency_ms, model.sla.max_latency_ms + 1e-6);
  EXPECT_DOUBLE_EQ(report.violating_rate, 0.0);
  EXPECT_DOUBLE_EQ(report.compliance(), 1.0);
  EXPECT_EQ(report.overloaded_pairs, 0u);
  EXPECT_NEAR(report.total_rate, 1200.0, 1e-9);
}

TEST(Assignment, OverloadDetectedAsViolation) {
  const DsppModel model = single_model();
  const PairIndex pairs(model);
  // 1 server for 200 req/s at mu = 100: unstable.
  const Vector allocation{1.0};
  const Assignment assignment = assign_demand(pairs, allocation, Vector{200.0});
  const SlaReport report = evaluate_sla(model, pairs, allocation, assignment);
  EXPECT_EQ(report.overloaded_pairs, 1u);
  EXPECT_DOUBLE_EQ(report.violating_rate, 200.0);
  EXPECT_EQ(report.compliance(), 0.0);
}

TEST(Assignment, PercentileSlaIsStricter) {
  DsppModel mean_model = single_model();
  DsppModel p95_model = mean_model;
  p95_model.sla.percentile = 0.95;
  const PairIndex pairs(mean_model);
  // Allocation sized for the MEAN SLA only.
  const Vector demand{400.0};
  Vector allocation{pairs.coefficient(0) * 400.0};
  const Assignment assignment = assign_demand(pairs, allocation, demand);
  const SlaReport mean_report = evaluate_sla(mean_model, pairs, allocation, assignment);
  const SlaReport p95_report = evaluate_sla(p95_model, pairs, allocation, assignment);
  EXPECT_DOUBLE_EQ(mean_report.violating_rate, 0.0);
  EXPECT_GT(p95_report.violating_rate, 0.0);  // same allocation misses the p95 bound
}

}  // namespace
}  // namespace gp::dspp
