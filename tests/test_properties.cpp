// Property-based sweeps across random instances: structural invariants of
// the window program, the competition game, and the solver stack that must
// hold for EVERY valid input, checked over seeded families.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "dspp/assignment.hpp"
#include "dspp/window_program.hpp"
#include "game/competition.hpp"
#include "qp/admm_solver.hpp"
#include "qp/ipm_solver.hpp"

namespace gp {
namespace {

using linalg::Vector;

/// Random bipartite network with every (l, v) pair usable.
dspp::DsppModel random_model(Rng& rng, std::size_t num_l, std::size_t num_v) {
  std::vector<std::vector<double>> latency(num_l, std::vector<double>(num_v, 0.0));
  for (auto& row : latency) {
    for (double& d : row) d = rng.uniform(5.0, 40.0);
  }
  std::vector<std::string> dcs, ans;
  for (std::size_t l = 0; l < num_l; ++l) dcs.push_back("dc" + std::to_string(l));
  for (std::size_t v = 0; v < num_v; ++v) ans.push_back("an" + std::to_string(v));
  dspp::DsppModel model;
  model.network = topology::NetworkModel(dcs, ans, latency);
  model.sla.mu = rng.uniform(60.0, 150.0);
  model.sla.max_latency_ms = rng.uniform(90.0, 200.0);
  model.reconfig_cost.assign(num_l, 0.0);
  for (double& c : model.reconfig_cost) c = rng.uniform(0.0, 0.5);
  model.capacity.assign(num_l, rng.uniform(500.0, 5000.0));
  return model;
}

dspp::WindowInputs random_inputs(Rng& rng, const dspp::PairIndex& pairs, std::size_t horizon) {
  dspp::WindowInputs inputs;
  inputs.initial_state.assign(pairs.num_pairs(), 0.0);
  for (double& x : inputs.initial_state) x = rng.uniform(0.0, 5.0);
  for (std::size_t t = 0; t < horizon; ++t) {
    Vector demand(pairs.num_access_networks());
    for (double& d : demand) d = rng.uniform(20.0, 400.0);
    inputs.demand.push_back(std::move(demand));
    Vector price(pairs.num_datacenters());
    for (double& p : price) p = rng.uniform(0.01, 0.2);
    inputs.price.push_back(std::move(price));
  }
  return inputs;
}

class WindowProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WindowProperty, SolutionSatisfiesEveryModelConstraint) {
  Rng rng(GetParam());
  const auto num_l = static_cast<std::size_t>(rng.uniform_int(1, 4));
  const auto num_v = static_cast<std::size_t>(rng.uniform_int(1, 6));
  const auto horizon = static_cast<std::size_t>(rng.uniform_int(1, 6));
  const dspp::DsppModel model = random_model(rng, num_l, num_v);
  const dspp::PairIndex pairs(model);
  const dspp::WindowInputs inputs = random_inputs(rng, pairs, horizon);
  const dspp::WindowProgram program(model, pairs, inputs);
  qp::AdmmSolver solver;
  const dspp::WindowSolution solution = program.solve(solver);
  ASSERT_TRUE(solution.ok()) << qp::to_string(solution.status);

  const double tol = 5e-2;  // first-order solver accuracy on unscaled data
  Vector previous = inputs.initial_state;
  for (std::size_t t = 0; t < horizon; ++t) {
    // State equation and sign constraints.
    for (std::size_t p = 0; p < pairs.num_pairs(); ++p) {
      EXPECT_NEAR(solution.x[t][p], previous[p] + solution.u[t][p], tol);
      EXPECT_GE(solution.x[t][p], -1e-9);
    }
    previous = solution.x[t];
    // Demand rows.
    for (std::size_t v = 0; v < num_v; ++v) {
      double served = 0.0;
      for (const std::size_t p : pairs.pairs_of_access_network(v)) {
        served += solution.x[t][p] / pairs.coefficient(p);
      }
      EXPECT_GE(served, inputs.demand[t][v] - tol) << "t=" << t << " v=" << v;
    }
    // Capacity rows and non-negative duals.
    for (std::size_t l = 0; l < num_l; ++l) {
      double used = 0.0;
      for (const std::size_t p : pairs.pairs_of_datacenter(l)) {
        used += model.server_size * solution.x[t][p];
      }
      EXPECT_LE(used, model.capacity[l] + tol);
      EXPECT_GE(solution.capacity_duals[t][l], 0.0);
    }
  }
}

TEST_P(WindowProperty, CostIsMonotoneInDemand) {
  Rng rng(GetParam() + 1000);
  const dspp::DsppModel model = random_model(rng, 2, 3);
  const dspp::PairIndex pairs(model);
  dspp::WindowInputs inputs = random_inputs(rng, pairs, 3);
  const dspp::WindowProgram base(model, pairs, inputs);
  for (auto& demand : inputs.demand) {
    for (double& d : demand) d *= 1.5;
  }
  const dspp::WindowProgram scaled(model, pairs, inputs);
  qp::AdmmSolver solver;
  const auto base_solution = base.solve(solver);
  const auto scaled_solution = scaled.solve(solver);
  ASSERT_TRUE(base_solution.ok());
  ASSERT_TRUE(scaled_solution.ok());
  EXPECT_GE(scaled_solution.objective, base_solution.objective - 1e-6);
}

TEST_P(WindowProperty, AssignmentConservesDemandAndMeetsSla) {
  Rng rng(GetParam() + 2000);
  const dspp::DsppModel model = random_model(rng, 3, 4);
  const dspp::PairIndex pairs(model);
  const dspp::WindowInputs inputs = random_inputs(rng, pairs, 1);
  const dspp::WindowProgram program(model, pairs, inputs);
  qp::AdmmSolver solver;
  const auto solution = program.solve(solver);
  ASSERT_TRUE(solution.ok());
  const auto assignment = dspp::assign_demand(pairs, solution.x[0], inputs.demand[0]);
  // Conservation: routed + unserved = demand, per access network.
  for (std::size_t v = 0; v < pairs.num_access_networks(); ++v) {
    double routed = 0.0;
    for (const std::size_t p : pairs.pairs_of_access_network(v)) {
      routed += assignment.rate[p];
    }
    EXPECT_NEAR(routed + assignment.unserved[v], inputs.demand[0][v], 1e-9);
  }
  // SLA: eq. (13) guarantees compliance when eq. (12) holds.
  const auto report = dspp::evaluate_sla(model, pairs, solution.x[0], assignment);
  EXPECT_GT(report.compliance(), 0.99);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WindowProperty, ::testing::Range<std::uint64_t>(1, 11));

class GameProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GameProperty, EquilibriumInvariants) {
  Rng rng(GetParam());
  const topology::NetworkModel network({"dc0", "dc1"}, {"an0", "an1", "an2"},
                                       {{12.0, 22.0, 35.0}, {30.0, 18.0, 12.0}});
  game::RandomProviderParams params;
  params.horizon = 1 + static_cast<std::size_t>(GetParam() % 4);
  const auto n = static_cast<std::size_t>(rng.uniform_int(2, 5));
  std::vector<game::ProviderConfig> providers;
  for (std::size_t i = 0; i < n; ++i) {
    providers.push_back(game::make_random_provider(network, params, rng));
  }
  const Vector capacity{rng.uniform(100.0, 600.0), rng.uniform(100.0, 600.0)};
  game::GameSettings settings;
  settings.epsilon = 0.01;
  settings.max_iterations = 1000;
  game::CompetitionGame game(std::move(providers), capacity, settings);
  const auto result = game.run();

  // Quotas partition capacity per data center.
  ASSERT_EQ(result.quotas.size(), n);
  for (std::size_t l = 0; l < capacity.size(); ++l) {
    double total = 0.0;
    for (const auto& quota : result.quotas) {
      EXPECT_GT(quota[l], 0.0);
      total += quota[l];
    }
    EXPECT_NEAR(total, capacity[l], 1e-6 * capacity[l] + 1e-6);
  }
  // Costs are finite, positive, and recorded per iteration.
  EXPECT_GT(result.total_cost, 0.0);
  EXPECT_EQ(static_cast<int>(result.cost_history.size()), result.iterations);
  // Efficiency against the social optimum: near 1, never meaningfully
  // better than 1 (the NE cannot beat the optimum).
  const auto welfare = game.solve_social_welfare();
  if (welfare.solved && welfare.total_cost > 1e-9 && result.converged) {
    const double ratio = game::efficiency_ratio(result, welfare);
    EXPECT_GT(ratio, 0.9);
    EXPECT_LT(ratio, 1.6) << "far from social optimum";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GameProperty, ::testing::Range<std::uint64_t>(1, 9));

class SolverProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SolverProperty, AdmmKktResidualsAreSmallOnRandomQps) {
  Rng rng(GetParam() * 7919);
  const auto n = static_cast<std::size_t>(rng.uniform_int(2, 30));
  const auto m = static_cast<std::size_t>(rng.uniform_int(1, 25));
  // Strictly convex random QP with guaranteed-feasible bounds.
  std::vector<linalg::Triplet> p_triplets;
  for (std::size_t i = 0; i < n; ++i) {
    p_triplets.push_back({static_cast<std::int32_t>(i), static_cast<std::int32_t>(i),
                          rng.uniform(0.5, 3.0)});
  }
  qp::QpProblem problem;
  problem.p = linalg::SparseMatrix::from_triplets(static_cast<std::int32_t>(n),
                                                  static_cast<std::int32_t>(n), p_triplets);
  problem.q.assign(n, 0.0);
  for (double& v : problem.q) v = rng.uniform(-2.0, 2.0);
  std::vector<linalg::Triplet> a_triplets;
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      if (rng.uniform() < 0.4) {
        a_triplets.push_back({static_cast<std::int32_t>(r), static_cast<std::int32_t>(c),
                              rng.uniform(-1.0, 1.0)});
      }
    }
  }
  problem.a = linalg::SparseMatrix::from_triplets(static_cast<std::int32_t>(m),
                                                  static_cast<std::int32_t>(n), a_triplets);
  Vector x0(n);
  for (double& v : x0) v = rng.uniform(-1.0, 1.0);
  const Vector ax0 = problem.a.multiply(x0);
  problem.lower.assign(m, 0.0);
  problem.upper.assign(m, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    problem.lower[r] = ax0[r] - rng.uniform(0.05, 2.0);
    problem.upper[r] = ax0[r] + rng.uniform(0.05, 2.0);
  }
  qp::AdmmSolver solver;
  const qp::QpResult result = solver.solve(problem);
  ASSERT_TRUE(result.ok()) << qp::to_string(result.status);
  // Primal feasibility and stationarity in unscaled terms.
  EXPECT_LE(problem.constraint_violation(result.x), 1e-3);
  const Vector px = problem.p.multiply(result.x);
  const Vector aty = problem.a.multiply_transposed(result.y);
  for (std::size_t j = 0; j < n; ++j) {
    EXPECT_NEAR(px[j] + problem.q[j] + aty[j], 0.0, 1e-3) << "stationarity at " << j;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverProperty, ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace gp
