// Tests for dense linear algebra: vector kernels, matrix arithmetic,
// Cholesky / LDL^T factorizations and Householder least squares.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "linalg/dense_factor.hpp"
#include "linalg/dense_matrix.hpp"
#include "linalg/vector_ops.hpp"

namespace gp::linalg {
namespace {

DenseMatrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  DenseMatrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng.uniform(-1.0, 1.0);
  return m;
}

DenseMatrix random_spd(std::size_t n, Rng& rng) {
  // A^T A + n I is comfortably positive definite.
  const DenseMatrix a = random_matrix(n, n, rng);
  DenseMatrix spd = a.transposed() * a;
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += static_cast<double>(n);
  return spd;
}

TEST(VectorOps, DotAndNorms) {
  const Vector a{1.0, 2.0, 3.0};
  const Vector b{4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 12.0);
  EXPECT_DOUBLE_EQ(norm2(Vector{3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf(b), 6.0);
}

TEST(VectorOps, AxpyAndScale) {
  Vector y{1.0, 1.0};
  const Vector x{2.0, 3.0};
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 5.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
  scale(0.5, y);
  EXPECT_DOUBLE_EQ(y[0], 2.5);
}

TEST(VectorOps, ProjectBoxRespectsBounds) {
  const Vector x{-2.0, 0.5, 9.0};
  const Vector lo{0.0, 0.0, 0.0};
  const Vector hi{1.0, 1.0, 1.0};
  const Vector out = project_box(x, lo, hi);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 0.5);
  EXPECT_DOUBLE_EQ(out[2], 1.0);
}

TEST(VectorOps, SizeMismatchThrows) {
  const Vector a{1.0};
  const Vector b{1.0, 2.0};
  EXPECT_THROW(dot(a, b), PreconditionError);
  EXPECT_THROW(add(a, b), PreconditionError);
}

TEST(DenseMatrix, MultiplyMatchesManual) {
  DenseMatrix m(2, 3, {1, 2, 3, 4, 5, 6});
  const Vector x{1.0, 0.0, -1.0};
  const Vector y = m.multiply(x);
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
}

TEST(DenseMatrix, TransposeRoundTrip) {
  Rng rng(5);
  const DenseMatrix m = random_matrix(4, 7, rng);
  const DenseMatrix mt = m.transposed();
  EXPECT_EQ(mt.rows(), 7u);
  EXPECT_EQ(mt.cols(), 4u);
  const DenseMatrix mtt = mt.transposed();
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 7; ++c) EXPECT_DOUBLE_EQ(m(r, c), mtt(r, c));
}

TEST(DenseMatrix, MultiplyTransposedAgreesWithExplicitTranspose) {
  Rng rng(6);
  const DenseMatrix m = random_matrix(5, 3, rng);
  Vector x(5);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  const Vector a = m.multiply_transposed(x);
  const Vector b = m.transposed().multiply(x);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-14);
}

TEST(DenseMatrix, ProductMatchesIdentity) {
  Rng rng(7);
  const DenseMatrix m = random_matrix(4, 4, rng);
  const DenseMatrix prod = m * DenseMatrix::identity(4);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c) EXPECT_DOUBLE_EQ(m(r, c), prod(r, c));
}

TEST(DenseMatrix, ShapeMismatchThrows) {
  DenseMatrix a(2, 3);
  DenseMatrix b(3, 3);
  EXPECT_THROW(a + b, PreconditionError);
  EXPECT_THROW(b * a, PreconditionError);
  EXPECT_THROW((DenseMatrix{2, 2, {1.0, 2.0, 3.0}}), PreconditionError);
}

class CholeskySizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CholeskySizeTest, SolvesRandomSpdSystems) {
  const std::size_t n = GetParam();
  Rng rng(100 + static_cast<std::uint64_t>(n));
  const DenseMatrix a = random_spd(n, rng);
  Vector b(n);
  for (auto& v : b) v = rng.uniform(-2.0, 2.0);
  Cholesky chol;
  ASSERT_EQ(chol.factor(a), FactorStatus::kOk);
  const Vector x = chol.solve(b);
  const Vector ax = a.multiply(x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskySizeTest, ::testing::Values(1, 2, 3, 5, 10, 40, 100));

TEST(Cholesky, RejectsIndefiniteMatrix) {
  DenseMatrix a(2, 2, {1.0, 2.0, 2.0, 1.0});  // eigenvalues 3, -1
  Cholesky chol;
  EXPECT_EQ(chol.factor(a), FactorStatus::kNotPositiveDefinite);
}

TEST(Cholesky, SolveBeforeFactorThrows) {
  Cholesky chol;
  EXPECT_THROW(chol.solve(Vector{1.0}), PreconditionError);
}

TEST(Ldlt, SolvesQuasiDefiniteKkt) {
  // [[ I, A^T ], [ A, -I ]] is quasi-definite for any A.
  Rng rng(9);
  const std::size_t n = 6, m = 4;
  DenseMatrix kkt(n + m, n + m);
  const DenseMatrix a = random_matrix(m, n, rng);
  for (std::size_t i = 0; i < n; ++i) kkt(i, i) = 1.0;
  for (std::size_t i = 0; i < m; ++i) kkt(n + i, n + i) = -1.0;
  for (std::size_t r = 0; r < m; ++r)
    for (std::size_t c = 0; c < n; ++c) {
      kkt(n + r, c) = a(r, c);
      kkt(c, n + r) = a(r, c);
    }
  Vector b(n + m);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  Ldlt ldlt;
  ASSERT_EQ(ldlt.factor(kkt), FactorStatus::kOk);
  const Vector x = ldlt.solve(b);
  const Vector kx = kkt.multiply(x);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(kx[i], b[i], 1e-9);
}

TEST(Ldlt, SignedDiagonalReflectsInertia) {
  // The KKT above has n positive and m negative eigen-directions.
  DenseMatrix kkt(2, 2, {1.0, 2.0, 2.0, -1.0});
  Ldlt ldlt;
  ASSERT_EQ(ldlt.factor(kkt), FactorStatus::kOk);
  int positives = 0, negatives = 0;
  for (double d : ldlt.d()) (d > 0 ? positives : negatives)++;
  EXPECT_EQ(positives, 1);
  EXPECT_EQ(negatives, 1);
}

TEST(Ldlt, ZeroPivotDetected) {
  DenseMatrix singular(2, 2, {0.0, 0.0, 0.0, 1.0});
  Ldlt ldlt;
  EXPECT_EQ(ldlt.factor(singular), FactorStatus::kZeroPivot);
}

TEST(HouseholderQr, ExactSolveOnSquareSystem) {
  Rng rng(11);
  const DenseMatrix a = random_spd(5, rng);  // well-conditioned square
  Vector b(5);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  HouseholderQr qr;
  ASSERT_EQ(qr.factor(a), FactorStatus::kOk);
  const Vector x = qr.solve_least_squares(b);
  const Vector ax = a.multiply(x);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(ax[i], b[i], 1e-9);
}

TEST(HouseholderQr, LeastSquaresMatchesNormalEquations) {
  Rng rng(13);
  const DenseMatrix a = random_matrix(20, 4, rng);
  Vector b(20);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  const auto x = least_squares(a, b);
  ASSERT_TRUE(x.has_value());
  // Verify the normal equations A^T (A x - b) = 0.
  const Vector residual = sub(a.multiply(*x), b);
  const Vector normal = a.multiply_transposed(residual);
  for (double v : normal) EXPECT_NEAR(v, 0.0, 1e-10);
}

TEST(HouseholderQr, DetectsRankDeficiency) {
  DenseMatrix a(3, 2, {1.0, 2.0, 2.0, 4.0, 3.0, 6.0});  // rank 1
  EXPECT_FALSE(least_squares(a, Vector{1.0, 2.0, 3.0}).has_value());
}

TEST(HouseholderQr, RecoversKnownPolynomialFit) {
  // Fit y = 2 + 3 t over exact data; least squares must recover coefficients.
  const std::size_t points = 10;
  DenseMatrix a(points, 2);
  Vector b(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double t = static_cast<double>(i);
    a(i, 0) = 1.0;
    a(i, 1) = t;
    b[i] = 2.0 + 3.0 * t;
  }
  const auto x = least_squares(a, b);
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 2.0, 1e-10);
  EXPECT_NEAR((*x)[1], 3.0, 1e-10);
}

}  // namespace
}  // namespace gp::linalg
