// Tests for the control module: predictors (oracle / persistence / seasonal
// / AR) and the MPC controller of Algorithm 1, including demand tracking,
// reconfiguration smoothing, price-following, quota handling, and the
// provisioning helper. Baseline controllers are covered at the end.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "control/baselines.hpp"
#include "control/mpc_controller.hpp"
#include "workload/diurnal.hpp"

namespace gp::control {
namespace {

using dspp::DsppModel;
using linalg::Vector;

DsppModel single_model(double reconfig_cost = 1.0) {
  DsppModel model;
  model.network = topology::NetworkModel({"dc0"}, {"an0"}, {{10.0}});
  model.sla.mu = 100.0;
  model.sla.max_latency_ms = 60.0;  // a = 1/80
  model.reconfig_cost = {reconfig_cost};
  model.capacity = {10000.0};
  return model;
}

DsppModel two_dc_model(double reconfig_cost = 0.5) {
  DsppModel model;
  model.network = topology::NetworkModel({"dc0", "dc1"}, {"an0"}, {{10.0}, {20.0}});
  model.sla.mu = 100.0;
  model.sla.max_latency_ms = 100.0;
  model.reconfig_cost = {reconfig_cost, reconfig_cost};
  model.capacity = {1000.0, 1000.0};
  return model;
}

std::unique_ptr<SeriesPredictor> flat_price(double value) {
  auto predictor = std::make_unique<LastValuePredictor>();
  (void)value;
  return predictor;
}

// --- Predictors ---

TEST(OraclePredictor, ReturnsTrueFuture) {
  OraclePredictor oracle({{1.0}, {2.0}, {3.0}, {4.0}});
  oracle.observe({1.0});
  auto f = oracle.forecast(2);
  ASSERT_EQ(f.size(), 2u);
  EXPECT_DOUBLE_EQ(f[0][0], 2.0);
  EXPECT_DOUBLE_EQ(f[1][0], 3.0);
  oracle.observe({2.0});
  EXPECT_DOUBLE_EQ(oracle.forecast(1)[0][0], 3.0);
}

TEST(OraclePredictor, ClampsOrWrapsAtTraceEnd) {
  OraclePredictor clamping({{1.0}, {2.0}}, /*wrap=*/false);
  clamping.observe({1.0});
  clamping.observe({2.0});
  auto f = clamping.forecast(3);
  EXPECT_DOUBLE_EQ(f[0][0], 2.0);  // past the end: repeats last
  EXPECT_DOUBLE_EQ(f[2][0], 2.0);
  OraclePredictor wrapping({{1.0}, {2.0}}, /*wrap=*/true);
  wrapping.observe({1.0});
  wrapping.observe({2.0});
  auto g = wrapping.forecast(3);
  EXPECT_DOUBLE_EQ(g[0][0], 1.0);  // wraps to the start
  EXPECT_DOUBLE_EQ(g[1][0], 2.0);
}

TEST(OraclePredictor, ForecastBeforeObserveThrows) {
  OraclePredictor oracle(std::vector<Vector>{{1.0}});
  EXPECT_THROW(oracle.forecast(1), PreconditionError);
}

TEST(LastValuePredictor, RepeatsLastObservation) {
  LastValuePredictor predictor;
  predictor.observe({5.0, 7.0});
  predictor.observe({6.0, 8.0});
  const auto f = predictor.forecast(3);
  ASSERT_EQ(f.size(), 3u);
  for (const auto& value : f) {
    EXPECT_DOUBLE_EQ(value[0], 6.0);
    EXPECT_DOUBLE_EQ(value[1], 8.0);
  }
}

TEST(SeasonalNaivePredictor, UsesSameSeasonPhase) {
  SeasonalNaivePredictor predictor(4);
  for (double v : {10.0, 20.0, 30.0, 40.0}) predictor.observe({v});
  const auto f = predictor.forecast(4);
  EXPECT_DOUBLE_EQ(f[0][0], 10.0);
  EXPECT_DOUBLE_EQ(f[1][0], 20.0);
  EXPECT_DOUBLE_EQ(f[2][0], 30.0);
  EXPECT_DOUBLE_EQ(f[3][0], 40.0);
}

TEST(SeasonalNaivePredictor, FallsBackBeforeFullSeason) {
  SeasonalNaivePredictor predictor(10);
  predictor.observe({3.0});
  const auto f = predictor.forecast(2);
  EXPECT_DOUBLE_EQ(f[0][0], 3.0);
  EXPECT_DOUBLE_EQ(f[1][0], 3.0);
}

TEST(ArPredictor, LearnsLinearTrend) {
  // y_k = 2k: AR(2) with intercept represents this exactly
  // (y_k = 2 y_{k-1} - y_{k-2}). Undamped so the trend extrapolates fully.
  ArPredictor predictor(2, 24, /*damping=*/1.0);
  for (int k = 0; k < 12; ++k) predictor.observe({2.0 * k});
  const auto f = predictor.forecast(3);
  EXPECT_NEAR(f[0][0], 24.0, 0.3);
  EXPECT_NEAR(f[1][0], 26.0, 0.6);
  EXPECT_NEAR(f[2][0], 28.0, 1.0);
}

TEST(ArPredictor, DampingPullsLongForecastsTowardLastValue) {
  ArPredictor damped(2, 24, /*damping=*/0.5);
  ArPredictor undamped(2, 24, /*damping=*/1.0);
  for (int k = 0; k < 12; ++k) {
    damped.observe({2.0 * k});
    undamped.observe({2.0 * k});
  }
  const auto fd = damped.forecast(4);
  const auto fu = undamped.forecast(4);
  const double last = 22.0;
  for (std::size_t t = 1; t < 4; ++t) {
    // Damped forecast sits strictly between the last value and the raw one.
    EXPECT_LT(fd[t][0], fu[t][0]);
    EXPECT_GT(fd[t][0], last);
  }
  EXPECT_THROW(ArPredictor(2, 24, 0.0), PreconditionError);
  EXPECT_THROW(ArPredictor(2, 24, 1.5), PreconditionError);
}

TEST(ArPredictor, TracksSinusoidBetterThanPersistence) {
  // One-step-ahead error on a sinusoid: AR(2) beats last-value.
  ArPredictor ar(2, 48);
  LastValuePredictor naive;
  double ar_error = 0.0, naive_error = 0.0;
  auto value_at = [](int k) {
    return 100.0 + 50.0 * std::sin(2.0 * std::numbers::pi * k / 24.0);
  };
  for (int k = 0; k < 72; ++k) {
    const Vector value{value_at(k)};
    ar.observe(value);
    naive.observe(value);
    if (k >= 24) {  // after warm-up
      const double truth = value_at(k + 1);
      ar_error += std::abs(ar.forecast(1)[0][0] - truth);
      naive_error += std::abs(naive.forecast(1)[0][0] - truth);
    }
  }
  EXPECT_LT(ar_error, 0.5 * naive_error);
}

TEST(ArPredictor, FallsBackToPersistenceWithShortHistory) {
  ArPredictor predictor(3, 20);
  predictor.observe({7.0});
  const auto f = predictor.forecast(2);
  EXPECT_DOUBLE_EQ(f[0][0], 7.0);
  EXPECT_DOUBLE_EQ(f[1][0], 7.0);
}

TEST(ArPredictor, ForecastsAreNonNegative) {
  ArPredictor predictor(2, 24);
  // Steeply decreasing series would extrapolate negative without clamping.
  for (double v : {100.0, 80.0, 60.0, 40.0, 20.0, 5.0}) predictor.observe({v});
  for (const auto& value : predictor.forecast(5)) EXPECT_GE(value[0], 0.0);
}

TEST(SeasonalArPredictor, BeatsBothParentsOnNoisyPeriodicSeries) {
  // On-off diurnal signal (the paper's demand shape) + persistent AR(1)
  // noise: the hybrid should out-predict both the pure seasonal baseline
  // (which ignores the noise persistence) and the pure AR (which overshoots
  // at the sharp ramps) on one-step error. NOTE: on a SMOOTH sinusoid the
  // plain AR can win — seasonal differencing doubles the noise — so the
  // sharp-ramp shape is essential to the hybrid's advantage.
  Rng rng(77);
  const std::size_t season = 24;
  SeasonalArPredictor hybrid(season, 2, 72);
  ArPredictor plain_ar(2, 72);
  SeasonalNaivePredictor seasonal(season);
  const workload::DiurnalProfile profile;
  double noise = 0.0;
  auto next_noise = [&] {
    noise = 0.8 * noise + rng.normal(0.0, 8.0);
    return noise;
  };
  std::vector<double> series;
  for (int k = 0; k < 24 * 5; ++k) {
    series.push_back(std::max(0.0, 150.0 * profile.multiplier(k % 24) + next_noise()));
  }
  double hybrid_error = 0.0, ar_error = 0.0, seasonal_error = 0.0;
  for (std::size_t k = 0; k < series.size(); ++k) {
    const Vector value{series[k]};
    hybrid.observe(value);
    plain_ar.observe(value);
    seasonal.observe(value);
    if (k >= 2 * season && k + 1 < series.size()) {
      const double truth = series[k + 1];
      hybrid_error += std::abs(hybrid.forecast(1)[0][0] - truth);
      ar_error += std::abs(plain_ar.forecast(1)[0][0] - truth);
      seasonal_error += std::abs(seasonal.forecast(1)[0][0] - truth);
    }
  }
  EXPECT_LT(hybrid_error, ar_error);
  EXPECT_LT(hybrid_error, seasonal_error);
}

TEST(SeasonalArPredictor, FallsBackBeforeFullSeason) {
  SeasonalArPredictor predictor(24);
  predictor.observe({50.0});
  predictor.observe({52.0});
  const auto f = predictor.forecast(3);
  for (const auto& value : f) EXPECT_GE(value[0], 0.0);
  EXPECT_THROW(SeasonalArPredictor(1), PreconditionError);
}

TEST(Predictors, CloneIsIndependent) {
  ArPredictor original(2, 24);
  original.observe({1.0});
  auto copy = original.clone();
  copy->observe({2.0});
  original.observe({3.0});
  // Both still functional and independent (no shared state crash).
  EXPECT_NO_THROW(copy->forecast(2));
  EXPECT_NO_THROW(original.forecast(2));
}

TEST(Predictors, RejectsBadConstruction) {
  EXPECT_THROW(ArPredictor(0, 10), PreconditionError);
  EXPECT_THROW(ArPredictor(4, 5), PreconditionError);
  EXPECT_THROW(SeasonalNaivePredictor(0), PreconditionError);
  EXPECT_THROW(OraclePredictor({}), PreconditionError);
}

// --- MPC controller ---

MpcController make_single_controller(double reconfig, std::size_t horizon,
                                     std::vector<Vector> demand_trace) {
  MpcSettings settings;
  settings.horizon = horizon;
  return MpcController(single_model(reconfig), settings,
                       std::make_unique<OraclePredictor>(std::move(demand_trace)),
                       flat_price(0.05));
}

TEST(MpcController, TracksDemandUpAndDown) {
  // Demand doubles then halves; allocation (x/a, i.e. servable demand) must
  // follow with bounded lag.
  std::vector<Vector> trace;
  for (int k = 0; k < 30; ++k) {
    trace.push_back({k < 15 ? 400.0 : 800.0});
  }
  MpcController controller = make_single_controller(0.05, 4, trace);
  const double a = controller.pairs().coefficient(0);
  Vector state{400.0 * a};
  for (int k = 0; k < 29; ++k) {
    const auto result = controller.step(state, trace[k], {0.05});
    ASSERT_TRUE(result.solved) << "step " << k;
    state = result.next_state;
  }
  // After the ramp the allocation should serve ~800 req/s.
  EXPECT_NEAR(state[0] / a, 800.0, 20.0);
}

TEST(MpcController, HigherReconfigCostMeansLessChurn) {
  std::vector<Vector> trace;
  for (int k = 0; k < 24; ++k) {
    trace.push_back({400.0 + 300.0 * std::sin(2.0 * std::numbers::pi * k / 12.0)});
  }
  auto churn_for = [&](double c) {
    MpcController controller = make_single_controller(c, 4, trace);
    Vector state{trace[0][0] / 80.0};
    std::vector<double> xs;
    for (int k = 0; k < 23; ++k) {
      const auto result = controller.step(state, trace[k], {0.05});
      EXPECT_TRUE(result.solved);
      state = result.next_state;
      xs.push_back(state[0]);
    }
    return gp::total_variation(xs);
  };
  EXPECT_LT(churn_for(5.0), churn_for(0.001));
}

TEST(MpcController, MovesLoadToCheaperDatacenter) {
  // Constant demand, price flips between DCs mid-run (the Fig. 5 mechanism).
  const DsppModel model = two_dc_model(0.01);
  MpcSettings settings;
  settings.horizon = 3;
  std::vector<Vector> demand_trace(40, Vector{500.0});
  std::vector<Vector> price_trace;
  for (int k = 0; k < 40; ++k) {
    price_trace.push_back(k < 20 ? Vector{0.05, 0.15} : Vector{0.15, 0.05});
  }
  MpcController controller(model, settings,
                           std::make_unique<OraclePredictor>(demand_trace),
                           std::make_unique<OraclePredictor>(price_trace));
  const auto& pairs = controller.pairs();
  const std::size_t p0 = *pairs.pair_of(0, 0);
  const std::size_t p1 = *pairs.pair_of(1, 0);
  Vector state(pairs.num_pairs(), 0.0);
  Vector mid_state, end_state;
  for (int k = 0; k < 39; ++k) {
    const auto result = controller.step(state, demand_trace[k], price_trace[k]);
    ASSERT_TRUE(result.solved);
    state = result.next_state;
    if (k == 18) mid_state = state;
  }
  end_state = state;
  // While dc0 is cheap, load sits in dc0; after the flip it migrates to dc1.
  EXPECT_GT(mid_state[p0], 2.0 * mid_state[p1]);
  EXPECT_GT(end_state[p1], 2.0 * end_state[p0]);
}

TEST(MpcController, QuotaCapsAllocationAndYieldsDuals) {
  DsppModel model = single_model(0.0);
  MpcSettings settings;
  settings.horizon = 2;
  settings.soft_demand_penalty = 10.0;
  std::vector<Vector> trace(10, Vector{400.0});  // needs 5 servers
  MpcController controller(model, settings, std::make_unique<OraclePredictor>(trace),
                           flat_price(0.05));
  controller.set_capacity_quota(Vector{3.0});
  Vector state{0.0};
  const auto result = controller.step(state, trace[0], {0.05});
  ASSERT_TRUE(result.solved);
  EXPECT_LE(result.next_state[0], 3.0 + 1e-3);
  EXPECT_GT(result.capacity_price[0], 1e-4);
  EXPECT_GT(result.unserved_next, 0.0);
  // Restore full capacity: demand is met again and the dual vanishes.
  controller.set_capacity_quota(std::nullopt);
  const auto unconstrained = controller.step(result.next_state, trace[1], {0.05});
  ASSERT_TRUE(unconstrained.solved);
  EXPECT_NEAR(unconstrained.next_state[0], 5.0, 0.1);
  EXPECT_LT(unconstrained.capacity_price[0], 1e-4);
}

TEST(MpcController, InfeasibleHardQuotaKeepsState) {
  DsppModel model = single_model(0.0);
  MpcSettings settings;
  settings.horizon = 1;  // hard demand + tiny quota: infeasible
  std::vector<Vector> trace(5, Vector{400.0});
  MpcController controller(model, settings, std::make_unique<OraclePredictor>(trace),
                           flat_price(0.05));
  controller.set_capacity_quota(Vector{1.0});
  const Vector state{2.0};
  const auto result = controller.step(state, trace[0], {0.05});
  EXPECT_FALSE(result.solved);
  EXPECT_EQ(result.status, qp::SolveStatus::kPrimalInfeasible);
  EXPECT_EQ(result.next_state, state);
}

TEST(MpcController, ProvisionForMatchesAnalyticMinimum) {
  MpcController controller = make_single_controller(1.0, 3, {Vector{1.0}});
  const Vector provision = controller.provision_for({400.0}, {0.05});
  EXPECT_NEAR(provision[0], 5.0, 1e-3);  // a * D = 400 / 80
}

TEST(MpcController, ValidatesInputSizes) {
  MpcController controller = make_single_controller(1.0, 3, {Vector{1.0}});
  EXPECT_THROW(controller.step({1.0, 2.0}, {1.0}, {0.05}), PreconditionError);
  EXPECT_THROW(controller.step({1.0}, {1.0, 2.0}, {0.05}), PreconditionError);
  EXPECT_THROW(controller.step({1.0}, {1.0}, {0.05, 0.06}), PreconditionError);
  EXPECT_THROW(controller.set_capacity_quota(Vector{1.0, 2.0}), PreconditionError);
}

// --- Baselines ---

TEST(StaticController, HoldsFixedTarget) {
  StaticController controller(single_model(), {400.0}, {0.05});
  EXPECT_NEAR(controller.target()[0], 5.0, 1e-3);
  const auto first = controller.step({0.0}, {999.0}, {9.9});
  EXPECT_NEAR(first.next_state[0], 5.0, 1e-3);
  const auto second = controller.step(first.next_state, {1.0}, {0.01});
  EXPECT_NEAR(second.control[0], 0.0, 1e-6);
}

TEST(ReactiveController, MatchesCurrentDemandExactly) {
  ReactiveController controller(single_model());
  const auto result = controller.step({0.0}, {800.0}, {0.05});
  ASSERT_TRUE(result.solved);
  EXPECT_NEAR(result.next_state[0], 10.0, 1e-2);
  const auto shrink = controller.step(result.next_state, {80.0}, {0.05});
  EXPECT_NEAR(shrink.next_state[0], 1.0, 1e-2);
}

TEST(ReactiveController, ChurnsMoreThanMpcOnVolatileDemand) {
  // The central claim behind the reconfiguration cost: a myopic policy
  // reconfigures much more than MPC under oscillating demand.
  std::vector<Vector> trace;
  for (int k = 0; k < 24; ++k) trace.push_back({k % 2 == 0 ? 400.0 : 700.0});
  MpcController mpc = make_single_controller(5.0, 4, trace);
  ReactiveController reactive(single_model());
  Vector mpc_state{5.0}, reactive_state{5.0};
  std::vector<double> mpc_xs, reactive_xs;
  for (int k = 0; k < 23; ++k) {
    const auto mr = mpc.step(mpc_state, trace[k], {0.05});
    ASSERT_TRUE(mr.solved);
    mpc_state = mr.next_state;
    mpc_xs.push_back(mpc_state[0]);
    const auto rr = reactive.step(reactive_state, trace[k], {0.05});
    reactive_state = rr.next_state;
    reactive_xs.push_back(reactive_state[0]);
  }
  EXPECT_LT(gp::total_variation(mpc_xs), 0.7 * gp::total_variation(reactive_xs));
}

}  // namespace
}  // namespace gp::control
