// Tests for the Rocketfuel-format ISP map loader and the GT-ITM-style
// access-network augmentation (the paper's topology pipeline).
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "topology/isp_map.hpp"
#include "topology/network.hpp"

namespace gp::topology {
namespace {

IspMap load_example() {
  std::istringstream in(example_backbone_text());
  const auto result = load_isp_map(in);
  EXPECT_TRUE(result.ok) << result.error;
  return result.map;
}

TEST(IspMapLoader, ParsesExampleBackbone) {
  const IspMap map = load_example();
  EXPECT_EQ(map.node_names.size(), 14u);
  EXPECT_EQ(map.graph.num_nodes(), 14);
  EXPECT_EQ(map.graph.num_edges(), 17);
  EXPECT_TRUE(map.graph.connected());
}

TEST(IspMapLoader, LatenciesAreShortestPaths) {
  const IspMap map = load_example();
  // Find sea and bos.
  NodeId sea = -1, bos = -1, sjc = -1;
  for (std::size_t i = 0; i < map.node_names.size(); ++i) {
    if (map.node_names[i] == "sea") sea = static_cast<NodeId>(i);
    if (map.node_names[i] == "bos") bos = static_cast<NodeId>(i);
    if (map.node_names[i] == "sjc") sjc = static_cast<NodeId>(i);
  }
  ASSERT_GE(sea, 0);
  ASSERT_GE(bos, 0);
  const auto dist = map.graph.dijkstra(sea);
  // sea -> sjc direct edge is 9 ms.
  EXPECT_DOUBLE_EQ(dist[static_cast<std::size_t>(sjc)], 9.0);
  // Cross-country multi-hop path exists and is plausibly bounded.
  EXPECT_GT(dist[static_cast<std::size_t>(bos)], 20.0);
  EXPECT_LT(dist[static_cast<std::size_t>(bos)], 80.0);
}

TEST(IspMapLoader, SkipsCommentsAndBlankLines) {
  std::istringstream in("# header\n\na b 3\n  # indented comment is a parse error? no: "
                        "tokens\n");
  // The third line "# indented..." starts with spaces then '#': the '#'
  // truncation leaves spaces only -> skipped.
  const auto result = load_isp_map(in);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.map.graph.num_nodes(), 2);
}

TEST(IspMapLoader, RejectsMalformedLines) {
  {
    std::istringstream in("a b\n");  // missing latency
    const auto result = load_isp_map(in);
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.error.find("line 1"), std::string::npos);
  }
  {
    std::istringstream in("a b 3 extra\n");
    EXPECT_FALSE(load_isp_map(in).ok);
  }
  {
    std::istringstream in("a a 3\n");  // self loop
    EXPECT_FALSE(load_isp_map(in).ok);
  }
  {
    std::istringstream in("a b -1\n");  // negative latency
    EXPECT_FALSE(load_isp_map(in).ok);
  }
  {
    std::istringstream in("# only comments\n");
    const auto result = load_isp_map(in);
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.error, "no edges found");
  }
  {
    std::istringstream in("a b 3\nc d 4\n");  // two components
    const auto result = load_isp_map(in);
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.error.find("not connected"), std::string::npos);
  }
}

TEST(Augmentation, AttachesStubDomainsToEveryPop) {
  const IspMap map = load_example();
  Rng rng(3);
  const auto topo = augment_with_access_networks(map, 2, 3, rng);
  EXPECT_EQ(topo.transit_nodes.size(), 14u);
  EXPECT_EQ(topo.stub_domains.size(), 28u);
  EXPECT_EQ(topo.stub_nodes.size(), 84u);
  EXPECT_EQ(topo.graph.num_nodes(), 14 + 84);
  EXPECT_TRUE(topo.graph.connected());
  // Latency classes: stub-transit edges are 5 ms, intra-stub 2 ms.
  for (const NodeId stub : topo.stub_nodes) {
    for (const auto& [other, weight] : topo.graph.neighbors(stub)) {
      if (topo.kind[static_cast<std::size_t>(other)] == NodeKind::kTransit) {
        EXPECT_DOUBLE_EQ(weight, 5.0);
      } else {
        EXPECT_DOUBLE_EQ(weight, 2.0);
      }
    }
  }
}

TEST(Augmentation, FeedsNetworkModel) {
  const IspMap map = load_example();
  Rng rng(5);
  const auto topo = augment_with_access_networks(map, 2, 3, rng);
  const auto network = NetworkModel::from_transit_stub(topo, 4, 20, rng);
  EXPECT_EQ(network.num_datacenters(), 4u);
  EXPECT_EQ(network.num_access_networks(), 20u);
  for (std::size_t l = 0; l < 4; ++l) {
    for (std::size_t v = 0; v < 20; ++v) {
      EXPECT_GE(network.latency_ms(l, v), 10.0);  // >= DC access + stub-transit
      EXPECT_LE(network.latency_ms(l, v), 120.0);
    }
  }
}

TEST(Augmentation, ValidatesParameters) {
  const IspMap map = load_example();
  Rng rng(1);
  EXPECT_THROW(augment_with_access_networks(map, 0, 3, rng), PreconditionError);
  EXPECT_THROW(augment_with_access_networks(map, 2, 0, rng), PreconditionError);
  EXPECT_THROW(augment_with_access_networks(IspMap{}, 1, 1, rng), PreconditionError);
}

}  // namespace
}  // namespace gp::topology
