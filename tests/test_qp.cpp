// Tests for the QP solver stack: problem validation, Ruiz equilibration,
// the ADMM solver, the dense IPM solver, and cross-validation between the
// two on random strictly convex programs (primal, dual and KKT agreement).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "qp/admm_solver.hpp"
#include "qp/ipm_solver.hpp"
#include "qp/scaling.hpp"

namespace gp::qp {
namespace {

using linalg::SparseMatrix;
using linalg::Triplet;
using linalg::Vector;

/// min (x0-1)^2 + (x1-2)^2 with no constraints => x = (1, 2).
QpProblem simple_unconstrained() {
  QpProblem problem;
  problem.p = SparseMatrix::identity(2, 2.0);
  problem.q = {-2.0, -4.0};
  problem.a = SparseMatrix::from_triplets(0, 2, {});
  problem.lower = {};
  problem.upper = {};
  return problem;
}

/// min x0^2 + x1^2 s.t. x0 + x1 = 2 => x = (1, 1), y = -2 (gradient 2x + A'y = 0).
QpProblem simple_equality() {
  QpProblem problem;
  problem.p = SparseMatrix::identity(2, 2.0);
  problem.q = {0.0, 0.0};
  const std::vector<Triplet> a{{0, 0, 1.0}, {0, 1, 1.0}};
  problem.a = SparseMatrix::from_triplets(1, 2, a);
  problem.lower = {2.0};
  problem.upper = {2.0};
  return problem;
}

/// min (x-3)^2 s.t. x <= 1 => x = 1, y = 4 at the upper bound... (2(x-3) + y = 0).
QpProblem simple_bound() {
  QpProblem problem;
  problem.p = SparseMatrix::identity(1, 2.0);
  problem.q = {-6.0};
  problem.a = SparseMatrix::identity(1, 1.0);
  problem.lower = {-kInfinity};
  problem.upper = {1.0};
  return problem;
}

/// Strictly convex random QP with a box and a few general rows, guaranteed
/// feasible (bounds straddle A x0 for a random x0).
QpProblem random_feasible_qp(std::size_t n, std::size_t m, Rng& rng) {
  // P = B^T B + I (dense-ish but sparse-stored).
  std::vector<Triplet> p_triplets;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      if (i == j) {
        p_triplets.push_back({static_cast<std::int32_t>(i), static_cast<std::int32_t>(j),
                              2.0 + rng.uniform()});
      } else if (rng.uniform() < 0.3) {
        const double v = rng.uniform(-0.3, 0.3);
        p_triplets.push_back({static_cast<std::int32_t>(i), static_cast<std::int32_t>(j), v});
        p_triplets.push_back({static_cast<std::int32_t>(j), static_cast<std::int32_t>(i), v});
      }
    }
  }
  QpProblem problem;
  problem.p = SparseMatrix::from_triplets(static_cast<std::int32_t>(n),
                                          static_cast<std::int32_t>(n), p_triplets);
  problem.q.assign(n, 0.0);
  for (auto& v : problem.q) v = rng.uniform(-1.0, 1.0);

  std::vector<Triplet> a_triplets;
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      if (rng.uniform() < 0.5) {
        a_triplets.push_back({static_cast<std::int32_t>(r), static_cast<std::int32_t>(c),
                              rng.uniform(-1.0, 1.0)});
      }
    }
  }
  problem.a = SparseMatrix::from_triplets(static_cast<std::int32_t>(m),
                                          static_cast<std::int32_t>(n), a_triplets);
  Vector x0(n);
  for (auto& v : x0) v = rng.uniform(-1.0, 1.0);
  const Vector ax0 = problem.a.multiply(x0);
  problem.lower.assign(m, 0.0);
  problem.upper.assign(m, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    const int kind = static_cast<int>(rng.uniform_int(0, 3));
    switch (kind) {
      case 0:  // two-sided
        problem.lower[r] = ax0[r] - rng.uniform(0.1, 1.0);
        problem.upper[r] = ax0[r] + rng.uniform(0.1, 1.0);
        break;
      case 1:  // upper only
        problem.lower[r] = -kInfinity;
        problem.upper[r] = ax0[r] + rng.uniform(0.0, 1.0);
        break;
      case 2:  // lower only
        problem.lower[r] = ax0[r] - rng.uniform(0.0, 1.0);
        problem.upper[r] = kInfinity;
        break;
      default:  // equality
        problem.lower[r] = ax0[r];
        problem.upper[r] = ax0[r];
        break;
    }
  }
  return problem;
}

/// Verifies the KKT conditions of (x, y) for the problem to tolerance.
void expect_kkt(const QpProblem& problem, const QpResult& result, double tol) {
  ASSERT_TRUE(result.ok()) << to_string(result.status);
  // Primal feasibility.
  EXPECT_LE(problem.constraint_violation(result.x), tol);
  // Stationarity: P x + q + A^T y = 0.
  const Vector px = problem.p.multiply(result.x);
  const Vector aty = problem.a.multiply_transposed(result.y);
  for (std::size_t j = 0; j < problem.num_variables(); ++j) {
    EXPECT_NEAR(px[j] + problem.q[j] + aty[j], 0.0, tol) << "stationarity at " << j;
  }
  // Dual feasibility + complementary slackness.
  const Vector ax = problem.a.multiply(result.x);
  for (std::size_t i = 0; i < problem.num_constraints(); ++i) {
    if (problem.lower[i] == problem.upper[i]) continue;  // equality: y free
    if (result.y[i] > tol) {
      EXPECT_NEAR(ax[i], problem.upper[i], std::sqrt(tol)) << "upper active at " << i;
    } else if (result.y[i] < -tol) {
      EXPECT_NEAR(ax[i], problem.lower[i], std::sqrt(tol)) << "lower active at " << i;
    }
  }
}

TEST(QpProblem, ValidateCatchesShapeErrors) {
  QpProblem problem = simple_equality();
  problem.q = {1.0};  // wrong size
  EXPECT_THROW(problem.validate(), PreconditionError);
  problem = simple_equality();
  problem.lower = {3.0};
  problem.upper = {2.0};  // crossing bounds
  EXPECT_THROW(problem.validate(), PreconditionError);
}

TEST(QpProblem, ObjectiveAndViolation) {
  const QpProblem problem = simple_equality();
  const Vector x{1.0, 1.0};
  EXPECT_DOUBLE_EQ(problem.objective(x), 2.0);
  EXPECT_NEAR(problem.constraint_violation(x), 0.0, 1e-15);
  const Vector bad{0.0, 0.0};
  EXPECT_DOUBLE_EQ(problem.constraint_violation(bad), 2.0);
}

TEST(Scaling, EquilibrationImprovesConditioning) {
  // Badly scaled problem: huge P entry vs tiny A entries.
  QpProblem problem;
  problem.p = SparseMatrix::diagonal(Vector{1e6, 1e-4});
  problem.q = {1e3, 1e-3};
  problem.a = SparseMatrix::from_triplets(1, 2, {{0, 0, 1e-3}, {0, 1, 1e2}});
  problem.lower = {-1.0};
  problem.upper = {1.0};
  const Scaling scaling = ruiz_equilibrate(problem);
  const Vector col = problem.p.column_inf_norms();
  const Vector a_row = problem.a.row_inf_norms();
  // After equilibration all norms should be within a few orders of 1.
  for (double v : col) EXPECT_LT(v, 10.0);
  for (double v : a_row) {
    EXPECT_LT(v, 10.0);
    EXPECT_GT(v, 0.1);
  }
  EXPECT_GT(scaling.cost_scale, 0.0);
}

TEST(Scaling, IdentityScalingLeavesProblemUnchanged) {
  const auto scaling = Scaling::identity(3, 2);
  EXPECT_EQ(scaling.d, Vector({1.0, 1.0, 1.0}));
  EXPECT_EQ(scaling.e, Vector({1.0, 1.0}));
  EXPECT_DOUBLE_EQ(scaling.cost_scale, 1.0);
}

class BothSolversTest : public ::testing::TestWithParam<bool> {
 protected:
  std::unique_ptr<QpSolver> make_solver() const {
    if (GetParam()) return std::make_unique<AdmmSolver>();
    return std::make_unique<IpmSolver>();
  }
  double tolerance() const { return GetParam() ? 2e-4 : 1e-6; }
};

TEST_P(BothSolversTest, SolvesUnconstrained) {
  const QpProblem problem = simple_unconstrained();
  const QpResult result = make_solver()->solve(problem);
  ASSERT_TRUE(result.ok()) << to_string(result.status);
  EXPECT_NEAR(result.x[0], 1.0, tolerance());
  EXPECT_NEAR(result.x[1], 2.0, tolerance());
  EXPECT_NEAR(result.objective, -5.0, tolerance());
}

TEST_P(BothSolversTest, SolvesEqualityConstrained) {
  const QpProblem problem = simple_equality();
  const QpResult result = make_solver()->solve(problem);
  ASSERT_TRUE(result.ok()) << to_string(result.status);
  EXPECT_NEAR(result.x[0], 1.0, tolerance());
  EXPECT_NEAR(result.x[1], 1.0, tolerance());
  EXPECT_NEAR(result.y[0], -2.0, 100 * tolerance());
}

TEST_P(BothSolversTest, SolvesActiveUpperBound) {
  const QpProblem problem = simple_bound();
  const QpResult result = make_solver()->solve(problem);
  ASSERT_TRUE(result.ok()) << to_string(result.status);
  EXPECT_NEAR(result.x[0], 1.0, tolerance());
  EXPECT_NEAR(result.y[0], 4.0, 100 * tolerance());
}

TEST_P(BothSolversTest, SatisfiesKktOnRandomProblems) {
  Rng rng(77);
  for (int trial = 0; trial < 8; ++trial) {
    const QpProblem problem = random_feasible_qp(8, 6, rng);
    const QpResult result = make_solver()->solve(problem);
    expect_kkt(problem, result, 5e-4);
  }
}

INSTANTIATE_TEST_SUITE_P(AdmmAndIpm, BothSolversTest, ::testing::Bool(),
                         [](const auto& param_info) { return param_info.param ? "Admm" : "Ipm"; });

TEST(CrossValidation, AdmmMatchesIpmOnRandomProblems) {
  Rng rng(123);
  AdmmSolver admm;
  IpmSolver ipm;
  for (int trial = 0; trial < 10; ++trial) {
    const QpProblem problem = random_feasible_qp(10, 8, rng);
    const QpResult ra = admm.solve(problem);
    const QpResult ri = ipm.solve(problem);
    ASSERT_TRUE(ra.ok()) << "admm trial " << trial << ": " << to_string(ra.status);
    ASSERT_TRUE(ri.ok()) << "ipm trial " << trial << ": " << to_string(ri.status);
    EXPECT_NEAR(ra.objective, ri.objective, 1e-3 * (1.0 + std::abs(ri.objective)))
        << "objective mismatch in trial " << trial;
    for (std::size_t j = 0; j < problem.num_variables(); ++j) {
      EXPECT_NEAR(ra.x[j], ri.x[j], 5e-3) << "x[" << j << "] trial " << trial;
    }
  }
}

TEST(CrossValidation, DualsAgreeOnActiveConstraints) {
  Rng rng(321);
  AdmmSolver admm;
  IpmSolver ipm;
  for (int trial = 0; trial < 5; ++trial) {
    const QpProblem problem = random_feasible_qp(6, 5, rng);
    const QpResult ra = admm.solve(problem);
    const QpResult ri = ipm.solve(problem);
    ASSERT_TRUE(ra.ok() && ri.ok());
    for (std::size_t i = 0; i < problem.num_constraints(); ++i) {
      EXPECT_NEAR(ra.y[i], ri.y[i], 5e-3 * (1.0 + std::abs(ri.y[i])))
          << "y[" << i << "] trial " << trial;
    }
  }
}

TEST(Admm, DetectsPrimalInfeasibility) {
  // x >= 1 and x <= -1 simultaneously.
  QpProblem problem;
  problem.p = SparseMatrix::identity(1, 1.0);
  problem.q = {0.0};
  problem.a = SparseMatrix::from_triplets(2, 1, {{0, 0, 1.0}, {1, 0, 1.0}});
  problem.lower = {1.0, -kInfinity};
  problem.upper = {kInfinity, -1.0};
  AdmmSolver solver;
  const QpResult result = solver.solve(problem);
  EXPECT_EQ(result.status, SolveStatus::kPrimalInfeasible);
}

TEST(Admm, DetectsDualInfeasibility) {
  // min -x with x >= 0 only: unbounded below.
  QpProblem problem;
  problem.p = SparseMatrix::from_triplets(1, 1, {});
  problem.q = {-1.0};
  problem.a = SparseMatrix::identity(1, 1.0);
  problem.lower = {0.0};
  problem.upper = {kInfinity};
  AdmmSolver solver;
  const QpResult result = solver.solve(problem);
  EXPECT_EQ(result.status, SolveStatus::kDualInfeasible);
}

TEST(Admm, HandlesBadlyScaledProblem) {
  // Price-like coefficients (1e-2) against demand-like bounds (1e4).
  QpProblem problem;
  problem.p = SparseMatrix::diagonal(Vector{2e-2, 2e-2});
  problem.q = {1e-2, 3e-2};
  problem.a = SparseMatrix::from_triplets(2, 2,
                                          {{0, 0, 1.0}, {0, 1, 1.0}, {1, 0, 1.0}, {1, 1, -1.0}});
  problem.lower = {1e4, -kInfinity};
  problem.upper = {kInfinity, 5e3};
  AdmmSolver solver;
  const QpResult result = solver.solve(problem);
  ASSERT_TRUE(result.ok()) << to_string(result.status);
  EXPECT_LE(problem.constraint_violation(result.x), 1e-2);
  // Compare against IPM on the same data.
  IpmSolver ipm;
  const QpResult exact = ipm.solve(problem);
  ASSERT_TRUE(exact.ok());
  EXPECT_NEAR(result.objective, exact.objective, 1e-3 * std::abs(exact.objective));
}

TEST(Admm, RespectsMaxIterations) {
  AdmmSettings settings;
  settings.max_iterations = 3;
  settings.check_interval = 1;
  AdmmSolver solver(settings);
  Rng rng(5);
  const QpProblem problem = random_feasible_qp(6, 4, rng);
  const QpResult result = solver.solve(problem);
  EXPECT_LE(result.iterations, 3);
}

TEST(Admm, ZeroVariableProblemIsTrivial) {
  QpProblem problem;
  problem.p = SparseMatrix::from_triplets(0, 0, {});
  problem.q = {};
  problem.a = SparseMatrix::from_triplets(0, 0, {});
  problem.lower = {};
  problem.upper = {};
  AdmmSolver solver;
  const QpResult result = solver.solve(problem);
  EXPECT_TRUE(result.x.empty());
}

TEST(Admm, WarmStartCutsIterations) {
  Rng rng(2024);
  const QpProblem problem = random_feasible_qp(12, 10, rng);
  AdmmSolver cold;
  const QpResult first = cold.solve(problem);
  ASSERT_TRUE(first.ok());
  AdmmSolver warm;
  warm.warm_start(first.x, first.y);
  const QpResult second = warm.solve(problem);
  ASSERT_TRUE(second.ok());
  EXPECT_LT(second.iterations, first.iterations);
  EXPECT_NEAR(second.objective, first.objective, 1e-4 * (1.0 + std::abs(first.objective)));
}

TEST(Admm, AutoWarmStartAcrossPerturbedProblems) {
  // Receding-horizon pattern: re-solve with slightly shifted bounds. The
  // second solve must start from the cached iterate and finish faster.
  Rng rng(2025);
  QpProblem problem = random_feasible_qp(12, 10, rng);
  AdmmSettings settings;
  settings.auto_warm_start = true;
  AdmmSolver solver(settings);
  const QpResult first = solver.solve(problem);
  ASSERT_TRUE(first.ok());
  for (std::size_t i = 0; i < problem.num_constraints(); ++i) {
    if (problem.lower[i] != -kInfinity) problem.lower[i] -= 0.01;
    if (problem.upper[i] != kInfinity) problem.upper[i] += 0.01;
  }
  const QpResult second = solver.solve(problem);
  ASSERT_TRUE(second.ok());
  EXPECT_LE(second.iterations, first.iterations);
  // And the warm iterate must not corrupt correctness.
  EXPECT_LE(problem.constraint_violation(second.x), 1e-4);
}

TEST(Admm, WarmStartWithWrongDimensionsIsIgnored) {
  Rng rng(2026);
  const QpProblem problem = random_feasible_qp(6, 4, rng);
  AdmmSolver solver;
  solver.warm_start(Vector(3, 1.0), Vector(2, 0.0));  // wrong sizes
  const QpResult result = solver.solve(problem);
  EXPECT_TRUE(result.ok());  // silently solved cold
}

TEST(Admm, PolishSharpensKktResiduals) {
  Rng rng(3030);
  AdmmSettings loose;
  loose.eps_abs = 1e-4;
  loose.eps_rel = 1e-4;
  AdmmSettings polished_settings = loose;
  polished_settings.polish = true;
  for (int trial = 0; trial < 5; ++trial) {
    const QpProblem problem = random_feasible_qp(10, 8, rng);
    AdmmSolver rough(loose);
    AdmmSolver polished(polished_settings);
    const QpResult a = rough.solve(problem);
    const QpResult b = polished.solve(problem);
    ASSERT_TRUE(a.ok() && b.ok());
    // The polished point is a sharper KKT point: (near-)exactly feasible
    // and (near-)exactly stationary. (Its objective may be a hair HIGHER
    // than the rough iterate's, whose slight infeasibility fakes a lower
    // cost — which is precisely why polish matters.)
    EXPECT_LE(problem.constraint_violation(b.x), 1e-7) << "trial " << trial;
    EXPECT_LE(b.primal_residual, a.primal_residual + 1e-12) << "trial " << trial;
    EXPECT_LE(b.dual_residual, std::max(a.dual_residual, 1e-7)) << "trial " << trial;
  }
}

TEST(Admm, PolishMatchesIpmDuals) {
  Rng rng(4040);
  AdmmSettings settings;
  settings.polish = true;
  AdmmSolver admm(settings);
  IpmSolver ipm;
  const QpProblem problem = random_feasible_qp(8, 6, rng);
  const QpResult pa = admm.solve(problem);
  const QpResult pi = ipm.solve(problem);
  ASSERT_TRUE(pa.ok() && pi.ok());
  for (std::size_t i = 0; i < problem.num_constraints(); ++i) {
    EXPECT_NEAR(pa.y[i], pi.y[i], 2e-4 * (1.0 + std::abs(pi.y[i]))) << "y[" << i << "]";
  }
}

TEST(Ipm, TightToleranceOnEqualityQp) {
  const QpProblem problem = simple_equality();
  IpmSettings settings;
  settings.tolerance = 1e-12;
  IpmSolver solver(settings);
  const QpResult result = solver.solve(problem);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.x[0], 1.0, 1e-9);
  EXPECT_LT(result.dual_residual, 1e-8);
}

}  // namespace
}  // namespace gp::qp
