// Tests for the conjugate-gradient solver and the flash-crowd anomaly
// detector (including the guard's effect inside a simulated flash crowd).
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "control/anomaly.hpp"
#include "linalg/cg.hpp"
#include "linalg/sparse_ldlt.hpp"
#include "sim/engine.hpp"

namespace gp {
namespace {

using linalg::SparseMatrix;
using linalg::Triplet;
using linalg::Vector;

/// Symmetric positive-definite test matrix: tridiagonal Laplacian + shift.
SparseMatrix spd_tridiagonal(std::int32_t n, double diagonal = 4.0) {
  std::vector<Triplet> triplets;
  for (std::int32_t i = 0; i < n; ++i) {
    triplets.push_back({i, i, diagonal});
    if (i + 1 < n) {
      triplets.push_back({i, i + 1, -1.0});
      triplets.push_back({i + 1, i, -1.0});
    }
  }
  return SparseMatrix::from_triplets(n, n, triplets);
}

TEST(ConjugateGradient, SolvesSpdSystem) {
  const auto a = spd_tridiagonal(50);
  Rng rng(3);
  Vector b(50);
  for (double& v : b) v = rng.uniform(-1.0, 1.0);
  Vector x(50, 0.0);
  const auto result = linalg::conjugate_gradient(a, b, x);
  ASSERT_TRUE(result.converged);
  const Vector ax = a.multiply(x);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(ax[i], b[i], 1e-7);
}

TEST(ConjugateGradient, MatchesDirectSolver) {
  const auto a = spd_tridiagonal(40);
  Rng rng(5);
  Vector b(40);
  for (double& v : b) v = rng.uniform(-2.0, 2.0);
  Vector x(40, 0.0);
  ASSERT_TRUE(linalg::conjugate_gradient(a, b, x).converged);
  linalg::SparseLdlt direct;
  ASSERT_EQ(direct.factor(a.upper_triangle()), linalg::SparseLdlt::Status::kOk);
  const Vector reference = direct.solve(b);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(x[i], reference[i], 1e-7);
}

TEST(ConjugateGradient, JacobiPreconditionerHelpsOnSkewedDiagonal) {
  // Wildly varying diagonal: Jacobi should cut iterations substantially.
  const std::int32_t n = 120;
  std::vector<Triplet> triplets;
  Rng rng(7);
  for (std::int32_t i = 0; i < n; ++i) {
    triplets.push_back({i, i, std::pow(10.0, rng.uniform(0.0, 4.0))});
    if (i + 1 < n) {
      triplets.push_back({i, i + 1, 0.3});
      triplets.push_back({i + 1, i, 0.3});
    }
  }
  const auto a = SparseMatrix::from_triplets(n, n, triplets);
  Vector b(n, 1.0);
  linalg::CgSettings with_jacobi;
  linalg::CgSettings without = with_jacobi;
  without.jacobi_preconditioner = false;
  Vector x1(n, 0.0), x2(n, 0.0);
  const auto preconditioned = linalg::conjugate_gradient(a, b, x1, with_jacobi);
  const auto plain = linalg::conjugate_gradient(a, b, x2, without);
  ASSERT_TRUE(preconditioned.converged);
  EXPECT_LT(preconditioned.iterations, plain.converged ? plain.iterations : 1000);
}

TEST(ConjugateGradient, WarmStartFinishesFaster) {
  const auto a = spd_tridiagonal(60);
  Vector b(60, 1.0);
  Vector cold(60, 0.0);
  const auto cold_result = linalg::conjugate_gradient(a, b, cold);
  ASSERT_TRUE(cold_result.converged);
  Vector warm = cold;  // exact solution as the start
  const auto warm_result = linalg::conjugate_gradient(a, b, warm);
  ASSERT_TRUE(warm_result.converged);
  EXPECT_LE(warm_result.iterations, 2);
}

TEST(ConjugateGradient, ReportsNonConvergenceOnIndefiniteMatrix) {
  // Indefinite: [[1, 2], [2, 1]].
  const auto a = SparseMatrix::from_triplets(
      2, 2, {{0, 0, 1.0}, {0, 1, 2.0}, {1, 0, 2.0}, {1, 1, 1.0}});
  Vector b{1.0, -1.0};
  Vector x(2, 0.0);
  const auto result = linalg::conjugate_gradient(a, b, x);
  EXPECT_FALSE(result.converged);
}

TEST(ConjugateGradient, ZeroRhsGivesZeroSolution) {
  const auto a = spd_tridiagonal(10);
  Vector b(10, 0.0);
  Vector x(10, 5.0);
  const auto result = linalg::conjugate_gradient(a, b, x);
  EXPECT_TRUE(result.converged);
  for (double v : x) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(ConjugateGradient, ValidatesInputs) {
  const auto a = spd_tridiagonal(4);
  Vector b(3, 1.0);
  Vector x(4, 0.0);
  EXPECT_THROW(linalg::conjugate_gradient(a, b, x), PreconditionError);
}

// --- anomaly detector ---

TEST(AnomalyDetector, FlagsSpikeAfterWarmup) {
  control::AnomalyDetector detector(0.25, 4.0, 4);
  Rng rng(11);
  for (int k = 0; k < 10; ++k) {
    EXPECT_FALSE(detector.observe({100.0 + rng.normal(0.0, 2.0)})) << "baseline at " << k;
  }
  EXPECT_TRUE(detector.observe({500.0}));
  EXPECT_TRUE(detector.anomalous());
  EXPECT_TRUE(detector.anomalous_dimensions()[0]);
}

TEST(AnomalyDetector, QuietDuringWarmup) {
  control::AnomalyDetector detector(0.25, 4.0, 8);
  for (int k = 0; k < 8; ++k) {
    EXPECT_FALSE(detector.observe({k == 4 ? 1000.0 : 100.0}));
  }
}

TEST(AnomalyDetector, TracksDriftWithoutFlagging) {
  // A slow ramp (5% per period) is normal growth, not an anomaly.
  control::AnomalyDetector detector;
  double level = 100.0;
  bool flagged = false;
  for (int k = 0; k < 40; ++k) {
    flagged = flagged || detector.observe({level});
    level *= 1.05;
  }
  EXPECT_FALSE(flagged);
}

TEST(AnomalyDetector, AdoptsSustainedSurgeEventually) {
  control::AnomalyDetector detector(0.3, 4.0, 4);
  for (int k = 0; k < 10; ++k) detector.observe({100.0});
  EXPECT_TRUE(detector.observe({400.0}));
  int flagged_periods = 1;
  for (int k = 0; k < 40; ++k) {
    if (detector.observe({400.0})) ++flagged_periods;
  }
  EXPECT_LT(flagged_periods, 30);  // the new level becomes normal
  EXPECT_FALSE(detector.anomalous());
}

TEST(AnomalyDetector, PerDimensionFlags) {
  control::AnomalyDetector detector(0.25, 4.0, 4);
  for (int k = 0; k < 8; ++k) detector.observe({50.0, 200.0});
  EXPECT_TRUE(detector.observe({300.0, 200.0}));
  EXPECT_TRUE(detector.anomalous_dimensions()[0]);
  EXPECT_FALSE(detector.anomalous_dimensions()[1]);
}

TEST(AnomalyDetector, ValidatesConstruction) {
  EXPECT_THROW(control::AnomalyDetector(0.0), PreconditionError);
  EXPECT_THROW(control::AnomalyDetector(1.0), PreconditionError);
  EXPECT_THROW(control::AnomalyDetector(0.2, -1.0), PreconditionError);
}

TEST(AnomalyGuard, ImprovesComplianceUnderFlashCrowd) {
  // A guarded policy inflates planned demand while the detector fires; the
  // guarded run must beat the unguarded one on compliance during a crowd.
  const auto sites = topology::default_datacenter_sites(2);
  const std::vector<topology::City> cities(topology::us_cities24().begin(),
                                           topology::us_cities24().begin() + 3);
  dspp::DsppModel model;
  model.network = topology::NetworkModel::from_geography(sites, cities);
  model.sla.mu = 100.0;
  model.sla.max_latency_ms = 120.0;
  model.reconfig_cost.assign(2, 0.001);
  model.capacity.assign(2, 2000.0);
  auto demand = workload::DemandModel::from_cities(cities, 1.5e-5,
                                                   workload::DiurnalProfile(0.8, 1.0));
  demand.add_flash_crowd({0, 8.0, 5.0, 4.0});
  const workload::ServerPriceModel prices(sites, workload::VmType::kMedium,
                                          workload::ElectricityPriceModel());
  sim::SimulationConfig config;
  config.periods = 20;
  config.noisy_demand = true;
  config.seed = 31;

  auto run = [&](bool guarded) {
    control::MpcSettings settings;
    settings.horizon = 3;
    control::MpcController controller(model, settings,
                                      std::make_unique<control::LastValuePredictor>(),
                                      std::make_unique<control::LastValuePredictor>());
    control::AnomalyDetector detector(0.3, 3.0, 4);
    sim::SimulationEngine engine(model, demand, prices, config);
    sim::PlacementPolicy policy = [&](const Vector& state, const Vector& observed,
                                      const Vector& price) {
      Vector planned = observed;
      if (detector.observe(observed) && guarded) {
        for (std::size_t v = 0; v < planned.size(); ++v) {
          if (detector.anomalous_dimensions()[v]) planned[v] *= 1.5;  // emergency cushion
        }
      }
      const auto result = controller.step(state, planned, price);
      return sim::PolicyOutcome{result.solved, result.control, result.next_state};
    };
    return engine.run(policy);
  };

  const auto unguarded = run(false);
  const auto guarded = run(true);
  EXPECT_GT(guarded.mean_compliance, unguarded.mean_compliance);
}

}  // namespace
}  // namespace gp
