// Tests for the topology substrate: geographic data, graph + Dijkstra,
// transit-stub generation invariants, and the bipartite NetworkModel.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/error.hpp"
#include "topology/geo.hpp"
#include "topology/network.hpp"
#include "topology/transit_stub.hpp"

namespace gp::topology {
namespace {

TEST(Geo, TwentyFourCitiesWithSaneData) {
  const auto& cities = us_cities24();
  ASSERT_EQ(cities.size(), 24u);
  std::set<std::string> names;
  for (const auto& city : cities) {
    EXPECT_GT(city.population, 1e6) << city.name;
    EXPECT_GE(city.latitude, 24.0) << city.name;   // contiguous US
    EXPECT_LE(city.latitude, 49.0) << city.name;
    EXPECT_LE(city.longitude, -66.0) << city.name;
    EXPECT_GE(city.longitude, -125.0) << city.name;
    EXPECT_LE(city.utc_offset_hours, -5);
    EXPECT_GE(city.utc_offset_hours, -8);
    names.insert(city.name);
  }
  EXPECT_EQ(names.size(), 24u) << "city names must be unique";
}

TEST(Geo, DefaultSitesMatchPaper) {
  const auto sites4 = default_datacenter_sites(4);
  ASSERT_EQ(sites4.size(), 4u);
  EXPECT_EQ(sites4[0].location.region, Region::kCalifornia);
  EXPECT_EQ(sites4[1].location.region, Region::kTexas);
  EXPECT_EQ(sites4[2].location.region, Region::kSoutheast);
  EXPECT_EQ(sites4[3].location.region, Region::kMidwest);
  EXPECT_EQ(default_datacenter_sites(5).size(), 5u);
  EXPECT_THROW(default_datacenter_sites(0), PreconditionError);
  EXPECT_THROW(default_datacenter_sites(6), PreconditionError);
}

TEST(Geo, HaversineKnownDistances) {
  const auto& cities = us_cities24();
  const auto ny = std::find_if(cities.begin(), cities.end(),
                               [](const City& c) { return c.name == "New York"; });
  const auto la = std::find_if(cities.begin(), cities.end(),
                               [](const City& c) { return c.name == "Los Angeles"; });
  ASSERT_NE(ny, cities.end());
  ASSERT_NE(la, cities.end());
  // NYC-LA great circle is ~3940 km.
  EXPECT_NEAR(haversine_km(*ny, *la), 3940.0, 60.0);
  EXPECT_NEAR(haversine_km(*ny, *ny), 0.0, 1e-9);
  // Symmetry.
  EXPECT_DOUBLE_EQ(haversine_km(*ny, *la), haversine_km(*la, *ny));
}

TEST(Geo, PropagationLatencyGrowsWithDistance) {
  const auto& cities = us_cities24();
  const City& ny = cities[0];
  double last = 0.0;
  // Order a few cities by distance and check latency is monotone in it.
  std::vector<const City*> others{&cities[5], &cities[2], &cities[3], &cities[1]};
  std::sort(others.begin(), others.end(), [&](const City* a, const City* b) {
    return haversine_km(ny, *a) < haversine_km(ny, *b);
  });
  for (const City* other : others) {
    const double latency = propagation_latency_ms(ny, *other);
    EXPECT_GT(latency, last);
    last = latency;
  }
}

TEST(Graph, DijkstraOnKnownGraph) {
  Graph g(5);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(0, 3, 10.0);
  g.add_edge(2, 3, 1.0);
  const auto dist = g.dijkstra(0);
  EXPECT_DOUBLE_EQ(dist[0], 0.0);
  EXPECT_DOUBLE_EQ(dist[1], 1.0);
  EXPECT_DOUBLE_EQ(dist[2], 3.0);
  EXPECT_DOUBLE_EQ(dist[3], 4.0);  // through 1-2-3, not the direct 10
  EXPECT_EQ(dist[4], Graph::kUnreachable);
}

TEST(Graph, ParallelEdgesUseCheapest) {
  Graph g(2);
  g.add_edge(0, 1, 5.0);
  g.add_edge(0, 1, 2.0);
  EXPECT_DOUBLE_EQ(g.dijkstra(0)[1], 2.0);
}

TEST(Graph, ConnectedDetection) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  EXPECT_FALSE(g.connected());
  g.add_edge(1, 2, 1.0);
  EXPECT_TRUE(g.connected());
  EXPECT_TRUE(Graph(0).connected());
}

TEST(Graph, PreconditionChecks) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 0, 1.0), PreconditionError);
  EXPECT_THROW(g.add_edge(0, 5, 1.0), PreconditionError);
  EXPECT_THROW(g.add_edge(0, 1, -1.0), PreconditionError);
  EXPECT_THROW(g.dijkstra(7), PreconditionError);
}

class TransitStubSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TransitStubSeedTest, GeneratedTopologyInvariants) {
  Rng rng(GetParam());
  TransitStubParams params;
  const auto topo = generate_transit_stub(params, rng);

  const auto expected_transit = static_cast<std::size_t>(params.transit_domains) *
                                static_cast<std::size_t>(params.transit_nodes_per_domain);
  EXPECT_EQ(topo.transit_nodes.size(), expected_transit);
  const auto expected_stub_domains =
      expected_transit * static_cast<std::size_t>(params.stub_domains_per_transit_node);
  EXPECT_EQ(topo.stub_domains.size(), expected_stub_domains);
  EXPECT_EQ(topo.stub_nodes.size(),
            expected_stub_domains * static_cast<std::size_t>(params.stub_nodes_per_domain));
  EXPECT_EQ(static_cast<std::size_t>(topo.graph.num_nodes()),
            topo.transit_nodes.size() + topo.stub_nodes.size());
  EXPECT_TRUE(topo.graph.connected());
  // Node metadata is consistent.
  for (const NodeId n : topo.transit_nodes) {
    EXPECT_EQ(topo.kind[static_cast<std::size_t>(n)], NodeKind::kTransit);
  }
  for (const NodeId n : topo.stub_nodes) {
    EXPECT_EQ(topo.kind[static_cast<std::size_t>(n)], NodeKind::kStub);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransitStubSeedTest, ::testing::Values(1, 7, 42, 1234, 99999));

TEST(TransitStub, DeterministicForSameSeed) {
  TransitStubParams params;
  Rng rng_a(77), rng_b(77);
  const auto a = generate_transit_stub(params, rng_a);
  const auto b = generate_transit_stub(params, rng_b);
  EXPECT_EQ(a.graph.num_nodes(), b.graph.num_nodes());
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
  const auto da = a.graph.dijkstra(0);
  const auto db = b.graph.dijkstra(0);
  for (std::size_t i = 0; i < da.size(); ++i) EXPECT_DOUBLE_EQ(da[i], db[i]);
}

TEST(TransitStub, LatencyClassesRespected) {
  Rng rng(5);
  TransitStubParams params;
  const auto topo = generate_transit_stub(params, rng);
  for (NodeId n = 0; n < topo.graph.num_nodes(); ++n) {
    for (const auto& [other, weight] : topo.graph.neighbors(n)) {
      const bool n_transit = topo.kind[static_cast<std::size_t>(n)] == NodeKind::kTransit;
      const bool o_transit = topo.kind[static_cast<std::size_t>(other)] == NodeKind::kTransit;
      if (n_transit && o_transit) {
        EXPECT_DOUBLE_EQ(weight, params.intra_transit_latency_ms);
      } else if (n_transit != o_transit) {
        EXPECT_DOUBLE_EQ(weight, params.stub_transit_latency_ms);
      } else {
        EXPECT_DOUBLE_EQ(weight, params.intra_stub_latency_ms);
      }
    }
  }
}

TEST(TransitStub, RejectsBadParameters) {
  Rng rng(1);
  TransitStubParams params;
  params.transit_domains = 0;
  EXPECT_THROW(generate_transit_stub(params, rng), PreconditionError);
  params = TransitStubParams{};
  params.extra_edge_probability = 1.5;
  EXPECT_THROW(generate_transit_stub(params, rng), PreconditionError);
}

TEST(NetworkModel, ExplicitMatrixAccessors) {
  NetworkModel net({"dc-a"}, {"an-0", "an-1"}, {{10.0, 20.0}});
  EXPECT_EQ(net.num_datacenters(), 1u);
  EXPECT_EQ(net.num_access_networks(), 2u);
  EXPECT_DOUBLE_EQ(net.latency_ms(0, 1), 20.0);
  EXPECT_EQ(net.dc_name(0), "dc-a");
  EXPECT_EQ(net.an_name(1), "an-1");
  EXPECT_THROW(net.latency_ms(1, 0), PreconditionError);
}

TEST(NetworkModel, RejectsRaggedOrNegativeMatrix) {
  EXPECT_THROW(NetworkModel({"a"}, {"x", "y"}, {{1.0}}), PreconditionError);
  EXPECT_THROW(NetworkModel({"a"}, {"x"}, {{-1.0}}), PreconditionError);
}

TEST(NetworkModel, FromTransitStubLatenciesAreSane) {
  Rng rng(11);
  const auto topo = generate_transit_stub(TransitStubParams{}, rng);
  const auto net = NetworkModel::from_transit_stub(topo, 4, 24, rng);
  EXPECT_EQ(net.num_datacenters(), 4u);
  EXPECT_EQ(net.num_access_networks(), 24u);
  for (std::size_t l = 0; l < 4; ++l) {
    for (std::size_t v = 0; v < 24; ++v) {
      const double d = net.latency_ms(l, v);
      // At least DC access (5) + stub-transit (5); at most a handful of
      // 20 ms transit hops plus stub hops.
      EXPECT_GE(d, 10.0);
      EXPECT_LE(d, 300.0);
    }
  }
}

TEST(NetworkModel, FromTransitStubValidatesCounts) {
  Rng rng(12);
  const auto topo = generate_transit_stub(TransitStubParams{}, rng);
  EXPECT_THROW(NetworkModel::from_transit_stub(topo, 1000, 2, rng), PreconditionError);
  EXPECT_THROW(NetworkModel::from_transit_stub(topo, 2, 10000, rng), PreconditionError);
}

TEST(NetworkModel, FromGeographyMatchesPropagationModel) {
  const auto sites = default_datacenter_sites(4);
  const auto& cities = us_cities24();
  const auto net = NetworkModel::from_geography(sites, cities);
  EXPECT_EQ(net.num_datacenters(), 4u);
  EXPECT_EQ(net.num_access_networks(), 24u);
  for (std::size_t l = 0; l < sites.size(); ++l) {
    for (std::size_t v = 0; v < cities.size(); ++v) {
      EXPECT_DOUBLE_EQ(net.latency_ms(l, v),
                       propagation_latency_ms(sites[l].location, cities[v]));
    }
  }
  // San Jose DC should be closer to Los Angeles than to New York.
  EXPECT_LT(net.latency_ms(0, 1), net.latency_ms(0, 0));
}

}  // namespace
}  // namespace gp::topology
