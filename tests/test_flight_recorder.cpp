// Tests for the flight-recorder pipeline: the convergence ring buffer, the
// invariant audits, spec/policy/bundle serialization round trips, the
// trace-driven scenario path, and SweepRunner's manifest + failure capture.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/audit.hpp"
#include "linalg/simd_dispatch.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "scenario/registry.hpp"
#include "scenario/serialize.hpp"
#include "scenario/spec.hpp"
#include "scenario/sweep.hpp"
#include "scenario/trace.hpp"
#include "sim/engine.hpp"
#include "workload/demand.hpp"
#include "workload/price.hpp"

namespace {

using gp::obs::ConvergenceRecorder;
using gp::obs::ConvergenceSample;

// ----------------------------------------------------------------- recorder

TEST(RecorderTest, RingKeepsTheNewestSamplesOldestFirst) {
  ConvergenceRecorder recorder(4);
  EXPECT_EQ(recorder.size(), 0u);
  EXPECT_EQ(recorder.capacity(), 4u);
  for (int i = 0; i < 10; ++i) {
    recorder.push("test.stream", i, 10.0 * i);
  }
  EXPECT_EQ(recorder.size(), 4u);
  EXPECT_EQ(recorder.total_pushed(), 10);
  const std::vector<ConvergenceSample> tail = recorder.tail();
  ASSERT_EQ(tail.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(tail[i].step, static_cast<long long>(6 + i));  // 6,7,8,9
    EXPECT_EQ(tail[i].a, 10.0 * static_cast<double>(6 + i));
  }
  // tail(max) trims to the NEWEST max samples.
  const auto newest2 = recorder.tail(2);
  ASSERT_EQ(newest2.size(), 2u);
  EXPECT_EQ(newest2[0].step, 8);
  EXPECT_EQ(newest2[1].step, 9);

  recorder.clear();
  EXPECT_EQ(recorder.size(), 0u);
  EXPECT_EQ(recorder.total_pushed(), 0);
}

TEST(RecorderTest, WriteJsonlEmitsOneRecordLinePerSample) {
  ConvergenceRecorder recorder(8);
  recorder.push("admm.residual", 1, 0.5, 0.25, 1.0);
  recorder.push("admm.unsolved", 2, 0.1);
  std::ostringstream out;
  recorder.write_jsonl(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"type\":\"record\""), std::string::npos);
  EXPECT_NE(text.find("\"stream\":\"admm.residual\""), std::string::npos);
  EXPECT_NE(text.find("\"stream\":\"admm.unsolved\""), std::string::npos);
}

TEST(RecorderTest, DisabledByDefaultAndToggles) {
  // GEOPLACE_RECORD is not set in the test environment.
  const bool was = ConvergenceRecorder::enabled();
  ConvergenceRecorder::set_enabled(false);
  EXPECT_FALSE(gp::obs::recording_enabled());
  ConvergenceRecorder::set_enabled(true);
  EXPECT_TRUE(gp::obs::recording_enabled());
  ConvergenceRecorder::set_enabled(was);
}

// ------------------------------------------------------------------- audits

TEST(AuditTest, CheckCountsViolationsPerNameAndInRegistry) {
  auto& registry = gp::obs::Registry::global();
  const bool metrics_were_enabled = registry.enabled();
  registry.set_enabled(true);
  gp::obs::Registry::reset_all();
  const bool was = gp::obs::audit::enabled();
  gp::obs::audit::set_enabled(true);
  gp::obs::audit::reset_thread_counts();

  EXPECT_TRUE(gp::obs::audit::check("test_invariant_ok", true, 1.0, 2.0));
  EXPECT_FALSE(gp::obs::audit::check("test_invariant_bad", false, 3.0, 2.0));
  EXPECT_FALSE(gp::obs::audit::check("test_invariant_bad", false, 4.0, 2.0));

  EXPECT_EQ(gp::obs::audit::thread_violations(), 2);
  const auto counts = gp::obs::audit::thread_counts();
  ASSERT_EQ(counts.size(), 1u);  // only violated names appear
  EXPECT_EQ(counts[0].first, "test_invariant_bad");
  EXPECT_EQ(counts[0].second, 2);
  EXPECT_EQ(registry.counter("obs.audit.checks").value(), 3);
  EXPECT_EQ(registry.counter("obs.audit.test_invariant_bad").value(), 2);

  gp::obs::audit::reset_thread_counts();
  EXPECT_EQ(gp::obs::audit::thread_violations(), 0);
  EXPECT_TRUE(gp::obs::audit::thread_counts().empty());

  gp::obs::audit::set_enabled(was);
  gp::obs::Registry::reset_all();
  registry.set_enabled(metrics_were_enabled);
}

TEST(AuditTest, ViolationDropsAMarkerIntoTheRecorderRing) {
  const bool rec_was = ConvergenceRecorder::enabled();
  const bool audit_was = gp::obs::audit::enabled();
  ConvergenceRecorder::set_enabled(true);
  gp::obs::audit::set_enabled(true);
  gp::obs::audit::reset_thread_counts();
  ConvergenceRecorder::local().clear();

  gp::obs::audit::check("test_marker", false, 9.0, 1.0);
  const auto tail = ConvergenceRecorder::local().tail();
  ASSERT_FALSE(tail.empty());
  EXPECT_STREQ(tail.back().stream, "test_marker");
  EXPECT_EQ(tail.back().a, 9.0);
  EXPECT_EQ(tail.back().b, 1.0);

  ConvergenceRecorder::local().clear();
  gp::obs::audit::reset_thread_counts();
  ConvergenceRecorder::set_enabled(rec_was);
  gp::obs::audit::set_enabled(audit_was);
}

TEST(AuditTest, CleanSimulationTriggersNoViolations) {
  // ablation_small under the default MPC with audits on: the engine's cost
  // identity, capacity conservation, and the solver's primal feasibility
  // checks must all hold on a healthy run.
  const bool was = gp::obs::audit::enabled();
  gp::obs::audit::set_enabled(true);
  gp::obs::audit::reset_thread_counts();

  gp::scenario::ScenarioSpec spec = gp::scenario::preset("ablation_small");
  spec.sim.periods = 8;
  const auto bundle = gp::scenario::build(spec);
  auto policy = gp::scenario::make_policy(bundle, spec, {});
  auto engine = gp::scenario::make_engine(bundle, spec);
  const auto summary = engine.run(policy.policy());

  EXPECT_EQ(summary.unsolved_periods, 0);
  EXPECT_EQ(gp::obs::audit::thread_violations(), 0)
      << "violations: " << gp::obs::audit::thread_counts().size();
  gp::obs::audit::set_enabled(was);
}

// ------------------------------------------------------------ serialization

TEST(SerializeTest, ScenarioSpecRoundTripsBitForBit) {
  gp::scenario::ScenarioSpec spec = gp::scenario::preset("flash_crowd");
  spec.rate_per_capita = 1.37e-5;             // not representable exactly
  spec.sim.price_noise_std = 0.1 + 0.2;       // 0.30000000000000004
  spec.sim.seed = 0xdeadbeefcafe1234ULL;
  const std::string json = gp::scenario::to_json(spec);
  const gp::scenario::ScenarioSpec parsed = gp::scenario::scenario_from_json(json);
  EXPECT_EQ(gp::scenario::to_json(parsed), json);  // bit-for-bit
  EXPECT_EQ(parsed.name, spec.name);
  EXPECT_EQ(parsed.sim.seed, spec.sim.seed);
  EXPECT_EQ(parsed.rate_per_capita, spec.rate_per_capita);  // exact doubles
  EXPECT_EQ(parsed.sim.price_noise_std, spec.sim.price_noise_std);
  ASSERT_EQ(parsed.flash_crowds.size(), spec.flash_crowds.size());
  EXPECT_EQ(parsed.flash_crowds[0].multiplier, spec.flash_crowds[0].multiplier);
}

TEST(SerializeTest, PolicySpecRoundTripsBitForBit) {
  gp::scenario::PolicySpec policy;
  policy.name = "mpc \"quoted\"";
  policy.horizon = 7;
  policy.demand_predictor.kind = "seasonal_ar";
  policy.demand_predictor.order = 3;
  policy.soft_demand_penalty = 1e6;
  policy.integerized = true;
  const std::string json = gp::scenario::to_json(policy);
  const gp::scenario::PolicySpec parsed = gp::scenario::policy_from_json(json);
  EXPECT_EQ(gp::scenario::to_json(parsed), json);
  EXPECT_EQ(parsed.name, policy.name);  // escaping survived
  EXPECT_EQ(parsed.demand_predictor.kind, "seasonal_ar");
  EXPECT_TRUE(parsed.integerized);
}

TEST(SerializeTest, SpecHashIsStableAndSensitive) {
  const gp::scenario::ScenarioSpec a = gp::scenario::preset("ablation_small");
  gp::scenario::ScenarioSpec b = a;
  EXPECT_EQ(gp::scenario::spec_hash(a), gp::scenario::spec_hash(b));
  EXPECT_EQ(gp::scenario::spec_hash(a).size(), 16u);  // 64-bit hex
  b.sim.seed += 1;
  EXPECT_NE(gp::scenario::spec_hash(a), gp::scenario::spec_hash(b));
  // Known-answer: FNV-1a 64 of the empty string is the offset basis.
  EXPECT_EQ(gp::scenario::fnv1a_hex(""), "cbf29ce484222325");
}

TEST(SerializeTest, ReplayBundleRoundTripsThroughDisk) {
  gp::scenario::ReplayBundle bundle;
  bundle.manifest = gp::obs::RunManifest::capture("test");
  bundle.manifest.seeds = {42};
  bundle.manifest.spec_hash = "0123456789abcdef";
  bundle.manifest.trace_paths = {"builtin:demo"};
  // A quoted/backslashed env pair exercises escaping through the round trip.
  bundle.manifest.env.emplace_back("GEOPLACE_FAKE", "a\"b\\c");
  bundle.scenario = gp::scenario::preset("trace_driven");
  bundle.policy.name = "mpc";
  bundle.seed = 42;
  bundle.audits_enabled = true;
  bundle.unsolved_periods = 2;
  bundle.failed_periods = {3, 5};
  bundle.audit_violations = {{"capacity_conservation", 1}};
  bundle.records.push_back({"admm.residual", 17, 0.5, 0.25, 8.0});

  const std::string json = gp::scenario::to_json(bundle);
  const gp::scenario::ReplayBundle parsed = gp::scenario::bundle_from_json(json);
  EXPECT_EQ(gp::scenario::to_json(parsed), json);
  EXPECT_EQ(parsed.failed_periods, bundle.failed_periods);
  EXPECT_EQ(parsed.audit_violations, bundle.audit_violations);
  ASSERT_EQ(parsed.records.size(), 1u);
  EXPECT_EQ(parsed.records[0].stream, "admm.residual");
  EXPECT_EQ(parsed.records[0].c, 8.0);
  EXPECT_EQ(parsed.manifest.trace_paths, bundle.manifest.trace_paths);
  // SIMD provenance (satellite of the vector-kernel PR): capture() records
  // the dispatched tier, and both it and the env map survive the round trip.
  EXPECT_EQ(bundle.manifest.simd,
            gp::linalg::simd::tier_name(gp::linalg::simd::active_tier()));
  EXPECT_EQ(parsed.manifest.simd, bundle.manifest.simd);
  EXPECT_EQ(parsed.manifest.env, bundle.manifest.env);

  const auto path = std::filesystem::temp_directory_path() / "gp_test_bundle.json";
  gp::scenario::write_bundle(bundle, path.string());
  const gp::scenario::ReplayBundle reread = gp::scenario::read_bundle(path.string());
  EXPECT_EQ(gp::scenario::to_json(reread), json);
  std::filesystem::remove(path);

  EXPECT_THROW(gp::scenario::bundle_from_json("{\"type\":\"other\"}"), std::exception);
  EXPECT_THROW(gp::scenario::read_bundle("/nonexistent/bundle.json"), std::exception);
}

// ------------------------------------------------------------- trace-driven

TEST(TraceDrivenTest, FromTraceReplaysRowsWithWrapAndClamp) {
  const std::vector<std::vector<double>> rates = {{10.0, 20.0}, {30.0, 40.0}};
  const auto wrap = gp::workload::DemandModel::from_trace(rates, 1.0, 0.0, true);
  EXPECT_TRUE(wrap.trace_backed());
  EXPECT_EQ(wrap.mean_rate(0, 0.0), 10.0);
  EXPECT_EQ(wrap.mean_rate(1, 1.5), 40.0);   // second row
  EXPECT_EQ(wrap.mean_rate(0, 2.0), 10.0);   // wraps to row 0
  EXPECT_EQ(wrap.mean_rate(0, 5.0), 30.0);   // 5 mod 2 == 1
  const auto clamp = gp::workload::DemandModel::from_trace(rates, 1.0, 0.0, false);
  EXPECT_EQ(clamp.mean_rate(0, 99.0), 30.0);  // clamps to the last row
  EXPECT_EQ(clamp.mean_rate(1, -5.0), 20.0);  // clamps to the first row

  EXPECT_THROW(gp::workload::DemandModel::from_trace({}, 1.0), std::exception);
  EXPECT_THROW(gp::workload::DemandModel::from_trace({{1.0}, {1.0, 2.0}}, 1.0),
               std::exception);
}

TEST(TraceDrivenTest, BuiltinDemoTraceLoadsAndBuilds) {
  const gp::workload::Trace trace =
      gp::scenario::load_spec_trace(gp::scenario::kBuiltinDemoTrace);
  EXPECT_EQ(trace.periods(), 8u);
  EXPECT_EQ(trace.width(), 4u);
  EXPECT_EQ(trace.values[0][0], 220.0);

  EXPECT_THROW(gp::scenario::load_spec_trace("/nonexistent/trace.csv"), std::exception);
}

TEST(TraceDrivenTest, PresetBuildsAndRunsFromTheTrace) {
  const gp::scenario::ScenarioSpec spec = gp::scenario::preset("trace_driven");
  EXPECT_EQ(spec.demand_trace_csv, gp::scenario::kBuiltinDemoTrace);
  const auto bundle = gp::scenario::build(spec);
  EXPECT_TRUE(bundle.demand.trace_backed());
  // Demand at period k must equal the trace row (period_hours = 0.5,
  // utc_start_hour = 0): row 3 of the demo trace is 420,300,180,120.
  const double hour = spec.sim.utc_start_hour + 3 * spec.sim.period_hours;
  EXPECT_EQ(bundle.demand.mean_rate(0, hour), 420.0);
  EXPECT_EQ(bundle.demand.mean_rate(3, hour), 120.0);
  // Two trace cycles: period 11 (hour 5.5) replays row 3 again.
  EXPECT_EQ(bundle.demand.mean_rate(0, hour + 4.0), 420.0);

  auto policy = gp::scenario::make_policy(bundle, spec, {});
  auto engine = gp::scenario::make_engine(bundle, spec);
  const auto summary = engine.run(policy.policy());
  EXPECT_EQ(summary.unsolved_periods, 0);
  EXPECT_GT(summary.total_cost, 0.0);
}

TEST(TraceDrivenTest, PriceTraceReplays) {
  const std::vector<gp::topology::DataCenterSite> sites(2);
  const std::vector<std::vector<double>> prices = {{0.05, 0.07}, {0.06, 0.08}};
  const auto model = gp::workload::ServerPriceModel::from_trace(
      sites, gp::workload::VmType::kSmall, prices, 1.0, 0.0, true);
  EXPECT_TRUE(model.trace_backed());
  EXPECT_EQ(model.server_price(0, 0.0), 0.05);
  EXPECT_EQ(model.server_price(1, 1.0), 0.08);
  EXPECT_EQ(model.server_price(0, 2.0), 0.05);  // wrap
  EXPECT_THROW(gp::workload::ServerPriceModel::from_trace(
                   sites, gp::workload::VmType::kSmall, {{0.05}}, 1.0),
               std::exception);
}

// -------------------------------------------------------------------- sweep

TEST(SweepFlightRecorderTest, ManifestHeadsTheJsonlAndBodyIsThreadInvariant) {
  gp::scenario::SweepGrid grid;
  gp::scenario::ScenarioSpec spec = gp::scenario::preset("ablation_small");
  spec.sim.periods = 4;
  grid.scenarios = {spec};
  grid.policies = {gp::scenario::PolicySpec{}};
  grid.num_seeds = 4;
  grid.base_seed = 3;

  auto sweep_at = [&grid](std::size_t threads) {
    gp::scenario::SweepOptions options;
    options.max_threads = threads;
    return gp::scenario::SweepRunner(grid, options).run();
  };
  const auto result1 = sweep_at(1);
  const auto result2 = sweep_at(2);

  EXPECT_EQ(result1.manifest.tool, "sweep");
  EXPECT_EQ(result1.manifest.seeds, std::vector<std::uint64_t>{3});
  EXPECT_EQ(result1.manifest.spec_hash, result2.manifest.spec_hash);

  std::ostringstream jsonl1, jsonl2;
  result1.write_jsonl(jsonl1);
  result2.write_jsonl(jsonl2);
  EXPECT_TRUE(gp::obs::is_manifest_line(jsonl1.str()));
  EXPECT_EQ(gp::obs::strip_manifest_lines(jsonl1.str()),
            gp::obs::strip_manifest_lines(jsonl2.str()));
}

TEST(SweepFlightRecorderTest, TraceScenarioRecordsItsPathsInTheManifest) {
  gp::scenario::SweepGrid grid;
  gp::scenario::ScenarioSpec spec = gp::scenario::preset("trace_driven");
  spec.sim.periods = 4;
  grid.scenarios = {spec};
  grid.policies = {gp::scenario::PolicySpec{}};
  const auto result = gp::scenario::SweepRunner(grid, {}).run();
  ASSERT_EQ(result.manifest.trace_paths.size(), 1u);
  EXPECT_EQ(result.manifest.trace_paths[0], gp::scenario::kBuiltinDemoTrace);
}

TEST(SweepFlightRecorderTest, FailedCellWritesAReplayBundle) {
  // Capacity far below demand: every period is infeasible. Initial
  // provisioning must be off (it throws on an infeasible environment).
  gp::scenario::ScenarioSpec spec = gp::scenario::preset("ablation_small");
  spec.name = "broken";
  spec.capacity = 0.5;
  spec.sim.periods = 3;
  spec.sim.provision_initial = false;

  gp::scenario::SweepGrid grid;
  grid.scenarios = {spec};
  grid.policies = {gp::scenario::PolicySpec{}};
  grid.base_seed = 5;

  const auto dir = std::filesystem::temp_directory_path() / "gp_test_failures";
  std::filesystem::remove_all(dir);
  gp::scenario::SweepOptions options;
  options.failures_dir = dir.string();
  const auto result = gp::scenario::SweepRunner(grid, options).run();

  EXPECT_EQ(result.failure_bundles, 1u);
  ASSERT_EQ(result.runs.size(), 1u);
  EXPECT_EQ(result.runs[0].summary.unsolved_periods, 3);
  EXPECT_EQ(result.runs[0].failed_periods, (std::vector<int>{0, 1, 2}));

  std::string bundle_path;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    bundle_path = entry.path().string();
  }
  ASSERT_FALSE(bundle_path.empty());
  EXPECT_NE(bundle_path.find("broken_mpc_seed"), std::string::npos);
  EXPECT_NE(bundle_path.find(".replay.json"), std::string::npos);
  const auto bundle = gp::scenario::read_bundle(bundle_path);
  EXPECT_EQ(bundle.scenario.name, "broken");
  EXPECT_EQ(bundle.scenario.sim.seed, result.runs[0].seed);  // resolved seed
  EXPECT_EQ(bundle.unsolved_periods, 3);
  EXPECT_EQ(bundle.failed_periods, (std::vector<int>{0, 1, 2}));
  std::filesystem::remove_all(dir);
}

TEST(SweepFlightRecorderTest, HealthySweepWritesNoBundles) {
  gp::scenario::ScenarioSpec spec = gp::scenario::preset("ablation_small");
  spec.sim.periods = 3;
  gp::scenario::SweepGrid grid;
  grid.scenarios = {spec};
  grid.policies = {gp::scenario::PolicySpec{}};

  const auto dir = std::filesystem::temp_directory_path() / "gp_test_no_failures";
  std::filesystem::remove_all(dir);
  gp::scenario::SweepOptions options;
  options.failures_dir = dir.string();
  const auto result = gp::scenario::SweepRunner(grid, options).run();
  EXPECT_EQ(result.failure_bundles, 0u);
  EXPECT_TRUE(std::filesystem::is_empty(dir));
  std::filesystem::remove_all(dir);
}

TEST(SweepFlightRecorderTest, CsvSidecarCarriesTheManifest) {
  gp::scenario::ScenarioSpec spec = gp::scenario::preset("ablation_small");
  spec.sim.periods = 3;
  gp::scenario::SweepGrid grid;
  grid.scenarios = {spec};
  grid.policies = {gp::scenario::PolicySpec{}};
  const auto result = gp::scenario::SweepRunner(grid, {}).run();

  const auto csv_path = std::filesystem::temp_directory_path() / "gp_test_sweep.csv";
  result.write_csv_file(csv_path.string());
  EXPECT_TRUE(std::filesystem::exists(csv_path));
  const auto sidecar = csv_path.string() + ".manifest.json";
  ASSERT_TRUE(std::filesystem::exists(sidecar));
  std::ifstream in(sidecar);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("\"tool\":\"sweep\""), std::string::npos);
  EXPECT_NE(buffer.str().find("\"git_sha\""), std::string::npos);
  std::filesystem::remove(csv_path);
  std::filesystem::remove(sidecar);
}

}  // namespace
