// Additional coverage for corners the module suites do not reach: solver
// scaling equivalence, the paper-faithful quota rule's invariants, RNG
// shuffle properties, sparse cancellation paths, and API guard rails.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dspp/integer.hpp"
#include "dspp/window_program.hpp"
#include "control/predictor.hpp"
#include "game/competition.hpp"
#include "qp/admm_solver.hpp"

namespace gp {
namespace {

using linalg::SparseMatrix;
using linalg::Triplet;
using linalg::Vector;

TEST(Scaling, SolutionsMatchWithAndWithoutEquilibration) {
  // Ruiz equilibration changes the iterates, not the answer.
  qp::QpProblem problem;
  problem.p = SparseMatrix::diagonal(Vector{2e4, 2e-3});
  problem.q = {-1e4, 1e-3};
  problem.a = SparseMatrix::from_triplets(2, 2, {{0, 0, 1.0}, {0, 1, 1e3}, {1, 0, 1.0}});
  problem.lower = {-1e3, 0.0};
  problem.upper = {1e3, 5.0};
  qp::AdmmSettings scaled_settings;
  scaled_settings.scale_problem = true;
  qp::AdmmSettings raw_settings;
  raw_settings.scale_problem = false;
  raw_settings.max_iterations = 100000;
  qp::AdmmSolver scaled(scaled_settings);
  qp::AdmmSolver raw(raw_settings);
  const auto a = scaled.solve(problem);
  const auto b = raw.solve(problem);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (std::size_t j = 0; j < 2; ++j) {
    EXPECT_NEAR(a.x[j], b.x[j], 1e-3 * (1.0 + std::abs(b.x[j])));
  }
}

TEST(Rng, ShuffleIsAPermutationAndMixes) {
  Rng rng(3);
  std::vector<int> items(50);
  for (int i = 0; i < 50; ++i) items[i] = i;
  const auto original = items;
  rng.shuffle(items);
  auto sorted = items;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, original);  // a permutation
  int moved = 0;
  for (int i = 0; i < 50; ++i) moved += items[i] != i;
  EXPECT_GT(moved, 30);  // and not the identity
}

TEST(SparseMatrix, CancellationInProductStillCorrect) {
  // B's column combines A columns so entries cancel exactly mid-way.
  const auto a = SparseMatrix::from_triplets(2, 2, {{0, 0, 1.0}, {0, 1, -1.0}, {1, 1, 1.0}});
  const auto b = SparseMatrix::from_triplets(2, 1, {{0, 0, 1.0}, {1, 0, 1.0}});
  const auto ab = a.multiply(b);
  EXPECT_DOUBLE_EQ(ab.coefficient(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(ab.coefficient(1, 0), 1.0);
}

TEST(WindowProgram, VariableIndexGuardRails) {
  dspp::DsppModel model;
  model.network = topology::NetworkModel({"dc0"}, {"an0"}, {{10.0}});
  model.sla.mu = 100.0;
  model.sla.max_latency_ms = 60.0;
  model.reconfig_cost = {0.1};
  model.capacity = {100.0};
  const dspp::PairIndex pairs(model);
  dspp::WindowInputs inputs;
  inputs.initial_state = {1.0};
  inputs.demand = {Vector{10.0}, Vector{20.0}};
  inputs.price = {Vector{0.05}, Vector{0.05}};
  const dspp::WindowProgram program(model, pairs, inputs);
  EXPECT_EQ(program.num_pairs(), 1u);
  EXPECT_LT(program.x_variable(1, 0), program.problem().num_variables());
  EXPECT_LT(program.u_variable(1, 0), program.problem().num_variables());
  EXPECT_NE(program.x_variable(0, 0), program.u_variable(0, 0));
  EXPECT_THROW(program.x_variable(2, 0), PreconditionError);
  EXPECT_THROW(program.u_variable(0, 1), PreconditionError);
}

TEST(CompetitionGame, PaperRuleKeepsQuotaPartition) {
  Rng rng(21);
  const topology::NetworkModel network({"dc0", "dc1"}, {"an0", "an1"},
                                       {{12.0, 25.0}, {28.0, 14.0}});
  game::RandomProviderParams params;
  params.horizon = 2;
  std::vector<game::ProviderConfig> providers;
  for (int i = 0; i < 3; ++i) providers.push_back(game::make_random_provider(network, params, rng));
  game::GameSettings settings;
  settings.update_rule = game::QuotaUpdateRule::kPaperFixedStep;
  settings.max_iterations = 50;
  const Vector capacity{80.0, 120.0};
  game::CompetitionGame game(std::move(providers), capacity, settings);
  const auto result = game.run();
  for (std::size_t l = 0; l < 2; ++l) {
    double total = 0.0;
    for (const auto& quota : result.quotas) total += quota[l];
    EXPECT_NEAR(total, capacity[l], 1e-6 * capacity[l] + 1e-6);
  }
}

TEST(CompetitionGame, WarmStartQuotasValidated) {
  Rng rng(23);
  const topology::NetworkModel network({"dc0", "dc1"}, {"an0", "an1"},
                                       {{12.0, 25.0}, {28.0, 14.0}});
  game::RandomProviderParams params;
  params.horizon = 2;
  std::vector<game::ProviderConfig> providers;
  for (int i = 0; i < 2; ++i) providers.push_back(game::make_random_provider(network, params, rng));
  game::CompetitionGame game(std::move(providers), Vector{100.0, 100.0});
  // Wrong provider count.
  EXPECT_THROW(game.run(std::vector<Vector>{Vector{50.0, 50.0}}), PreconditionError);
  // Wrong L.
  EXPECT_THROW(game.run(std::vector<Vector>{Vector{50.0}, Vector{50.0}}), PreconditionError);
  // Valid warm start runs.
  const auto result =
      game.run(std::vector<Vector>{Vector{30.0, 70.0}, Vector{70.0, 30.0}});
  EXPECT_GT(result.iterations, 0);
}

TEST(IntegerizeResult, GapIsRelative) {
  dspp::IntegerizeResult result;
  result.continuous_objective = 10.0;
  result.objective = 11.0;
  EXPECT_NEAR(result.gap(), 0.1, 1e-12);
  result.continuous_objective = 0.0;
  EXPECT_DOUBLE_EQ(result.gap(), 0.0);
}

TEST(OraclePredictor, ObserveDimensionMismatchThrows) {
  control::OraclePredictor oracle({{1.0, 2.0}});
  EXPECT_THROW(oracle.observe({1.0}), PreconditionError);
}

TEST(Admm, UnscaledModeStillDetectsInfeasibility) {
  qp::QpProblem problem;
  problem.p = SparseMatrix::identity(1, 1.0);
  problem.q = {0.0};
  problem.a = SparseMatrix::from_triplets(2, 1, {{0, 0, 1.0}, {1, 0, 1.0}});
  problem.lower = {1.0, -qp::kInfinity};
  problem.upper = {qp::kInfinity, -1.0};
  qp::AdmmSettings settings;
  settings.scale_problem = false;
  qp::AdmmSolver solver(settings);
  EXPECT_EQ(solver.solve(problem).status, qp::SolveStatus::kPrimalInfeasible);
}

TEST(NetworkModel, TransitStubEmbeddingDeterministicPerRngState) {
  topology::TransitStubParams params;
  Rng rng_a(5), rng_b(5);
  const auto topo_a = topology::generate_transit_stub(params, rng_a);
  const auto topo_b = topology::generate_transit_stub(params, rng_b);
  const auto net_a = topology::NetworkModel::from_transit_stub(topo_a, 3, 6, rng_a);
  const auto net_b = topology::NetworkModel::from_transit_stub(topo_b, 3, 6, rng_b);
  for (std::size_t l = 0; l < 3; ++l) {
    for (std::size_t v = 0; v < 6; ++v) {
      EXPECT_DOUBLE_EQ(net_a.latency_ms(l, v), net_b.latency_ms(l, v));
    }
  }
}

}  // namespace
}  // namespace gp
