// Integration tests for the simulation engine: the full observe -> control
// -> route -> measure loop with the MPC controller and the baselines, on a
// realistic multi-DC / multi-city scenario.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "obs/timeline.hpp"
#include "sim/engine.hpp"

namespace gp::sim {
namespace {

using linalg::Vector;

dspp::DsppModel geo_model(std::size_t num_dcs = 3, std::size_t num_cities = 6) {
  const auto sites = topology::default_datacenter_sites(num_dcs);
  const auto& all_cities = topology::us_cities24();
  const std::vector<topology::City> cities(all_cities.begin(),
                                           all_cities.begin() + num_cities);
  dspp::DsppModel model;
  model.network = topology::NetworkModel::from_geography(sites, cities);
  model.sla.mu = 100.0;
  model.sla.max_latency_ms = 120.0;
  model.reconfig_cost.assign(num_dcs, 0.001);
  model.capacity.assign(num_dcs, 2000.0);  // the paper's per-DC capacity
  return model;
}

workload::DemandModel geo_demand(std::size_t num_cities = 6, double per_capita = 2e-5) {
  const auto& all_cities = topology::us_cities24();
  const std::vector<topology::City> cities(all_cities.begin(),
                                           all_cities.begin() + num_cities);
  return workload::DemandModel::from_cities(cities, per_capita, workload::DiurnalProfile());
}

workload::ServerPriceModel geo_prices(std::size_t num_dcs = 3) {
  return workload::ServerPriceModel(topology::default_datacenter_sites(num_dcs),
                                    workload::VmType::kMedium,
                                    workload::ElectricityPriceModel());
}

control::MpcController make_mpc(const dspp::DsppModel& model, std::size_t horizon = 4) {
  control::MpcSettings settings;
  settings.horizon = horizon;
  return control::MpcController(model, settings,
                                std::make_unique<control::LastValuePredictor>(),
                                std::make_unique<control::LastValuePredictor>());
}

TEST(SimulationEngine, RunsFullDayWithMpc) {
  // A persistence predictor lags the morning/evening demand ramps, so the
  // provider deploys the paper's reservation-ratio cushion (Section IV-B).
  dspp::DsppModel model = geo_model();
  model.sla.reservation_ratio = 1.3;
  SimulationConfig config;
  config.periods = 24;
  auto controller = make_mpc(model);
  SimulationEngine engine(model, geo_demand(), geo_prices(), config);
  const SimulationSummary summary = engine.run(policy_from(controller));
  ASSERT_EQ(summary.periods.size(), 24u);
  EXPECT_EQ(summary.unsolved_periods, 0);
  EXPECT_GT(summary.total_cost, 0.0);
  EXPECT_GT(summary.total_resource_cost, 0.0);
  EXPECT_GT(summary.mean_compliance, 0.75);
  for (const auto& period : summary.periods) {
    EXPECT_GT(period.total_servers, 0.0);
    EXPECT_EQ(period.servers_per_dc.size(), 3u);
  }
}

TEST(SimulationEngine, OraclePredictionAchievesFullCompliance) {
  // With perfect demand/price foresight the MPC allocation always covers
  // the realized demand: compliance ~ 1 without any cushion.
  const auto model = geo_model();
  SimulationConfig config;
  config.periods = 24;
  const auto demand = geo_demand();
  const auto prices = geo_prices();
  SimulationEngine engine(model, demand, prices, config);
  // Build the exact traces the engine will observe (mid-period sampling).
  std::vector<Vector> demand_trace, price_trace;
  Rng unused(0);
  for (std::size_t k = 0; k <= config.periods + 8; ++k) {
    const double hour = static_cast<double>(k) * config.period_hours;
    demand_trace.push_back(engine.observe_demand(hour, unused));
    price_trace.push_back(engine.observe_price(hour));
  }
  control::MpcSettings settings;
  settings.horizon = 4;
  control::MpcController controller(
      model, settings, std::make_unique<control::OraclePredictor>(demand_trace),
      std::make_unique<control::OraclePredictor>(price_trace));
  const SimulationSummary summary = engine.run(policy_from(controller));
  EXPECT_EQ(summary.unsolved_periods, 0);
  EXPECT_GT(summary.mean_compliance, 0.999);
  EXPECT_GT(summary.worst_compliance, 0.99);
}

TEST(SimulationEngine, DeterministicForSameSeed) {
  const auto model = geo_model();
  SimulationConfig config;
  config.periods = 8;
  config.noisy_demand = true;
  config.seed = 77;
  auto controller_a = make_mpc(model);
  auto controller_b = make_mpc(model);
  SimulationEngine engine_a(model, geo_demand(), geo_prices(), config);
  SimulationEngine engine_b(model, geo_demand(), geo_prices(), config);
  const auto a = engine_a.run(policy_from(controller_a));
  const auto b = engine_b.run(policy_from(controller_b));
  ASSERT_EQ(a.periods.size(), b.periods.size());
  EXPECT_DOUBLE_EQ(a.total_cost, b.total_cost);
  for (std::size_t k = 0; k < a.periods.size(); ++k) {
    EXPECT_DOUBLE_EQ(a.periods[k].total_demand, b.periods[k].total_demand);
  }
}

TEST(SimulationEngine, NoisyDemandDiffersFromMean) {
  const auto model = geo_model();
  SimulationConfig noisy;
  noisy.periods = 8;
  noisy.noisy_demand = true;
  SimulationConfig clean = noisy;
  clean.noisy_demand = false;
  auto controller_a = make_mpc(model);
  auto controller_b = make_mpc(model);
  SimulationEngine engine_noisy(model, geo_demand(), geo_prices(), noisy);
  SimulationEngine engine_clean(model, geo_demand(), geo_prices(), clean);
  const auto a = engine_noisy.run(policy_from(controller_a));
  const auto b = engine_clean.run(policy_from(controller_b));
  double diff = 0.0;
  for (std::size_t k = 0; k < a.periods.size(); ++k) {
    diff += std::abs(a.periods[k].total_demand - b.periods[k].total_demand);
  }
  EXPECT_GT(diff, 0.0);
}

TEST(SimulationEngine, MpcBeatsStaticOnCostUnderDiurnalDemand) {
  // Static provisioning for peak demand wastes money at night; MPC scales
  // down. This is the core economic argument of the paper.
  const auto model = geo_model();
  SimulationConfig config;
  config.periods = 24;
  const auto demand = geo_demand();
  const auto prices = geo_prices();

  auto mpc = make_mpc(model);
  SimulationEngine engine(model, demand, prices, config);
  const auto mpc_summary = engine.run(policy_from(mpc));

  // Peak demand: maximum over the day per access network.
  Vector peak(model.num_access_networks(), 0.0);
  for (double h = 0.0; h < 24.0; h += 1.0) {
    const auto rates = demand.mean_rates(h);
    for (std::size_t v = 0; v < peak.size(); ++v) peak[v] = std::max(peak[v], rates[v]);
  }
  control::StaticController static_controller(model, peak, engine.observe_price(12.0));
  SimulationEngine engine2(model, demand, prices, config);
  const auto static_summary = engine2.run(policy_from(static_controller));

  EXPECT_LT(mpc_summary.total_cost, static_summary.total_cost);
  EXPECT_GT(static_summary.mean_compliance, 0.99);  // static peak always covers demand
}

TEST(SimulationEngine, ReactiveChurnsMoreThanMpcOnNoisyDemand) {
  dspp::DsppModel model = geo_model();
  model.reconfig_cost.assign(model.num_datacenters(), 0.05);
  SimulationConfig config;
  config.periods = 24;
  config.noisy_demand = true;

  auto mpc = make_mpc(model);
  SimulationEngine engine(model, geo_demand(), geo_prices(), config);
  const auto mpc_summary = engine.run(policy_from(mpc));

  control::ReactiveController reactive(model);
  SimulationEngine engine2(model, geo_demand(), geo_prices(), config);
  const auto reactive_summary = engine2.run(policy_from(reactive));

  EXPECT_LT(mpc_summary.total_churn, reactive_summary.total_churn);
}

TEST(SimulationEngine, CsvOutputHasHeaderAndRows) {
  const auto model = geo_model();
  SimulationConfig config;
  config.periods = 4;
  auto controller = make_mpc(model);
  SimulationEngine engine(model, geo_demand(), geo_prices(), config);
  const auto summary = engine.run(policy_from(controller));
  std::ostringstream out;
  summary.write_csv(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("utc_hour"), std::string::npos);
  EXPECT_NE(text.find("servers_dc2"), std::string::npos);
  // 1 header + 4 data rows.
  EXPECT_EQ(static_cast<int>(std::count(text.begin(), text.end(), '\n')), 5);
}

TEST(SimulationEngine, FreezePricesHoldsStartHourPrice) {
  // An idle policy holds the allocation fixed; with frozen prices the
  // per-period resource cost must then be constant, while without freezing
  // it follows the diurnal electricity curves.
  const auto model = geo_model();
  auto idle = [](const linalg::Vector& state, const linalg::Vector&, const linalg::Vector&) {
    return PolicyOutcome{true, linalg::Vector(state.size(), 0.0), state};
  };
  SimulationConfig frozen_config;
  frozen_config.periods = 12;
  frozen_config.freeze_prices = true;
  SimulationConfig moving_config = frozen_config;
  moving_config.freeze_prices = false;
  SimulationEngine frozen_engine(model, geo_demand(), geo_prices(), frozen_config);
  SimulationEngine moving_engine(model, geo_demand(), geo_prices(), moving_config);
  const auto frozen = frozen_engine.run(idle);
  const auto moving = moving_engine.run(idle);
  double frozen_spread = 0.0, moving_spread = 0.0;
  for (const auto& period : frozen.periods) {
    frozen_spread = std::max(frozen_spread,
                             std::abs(period.resource_cost - frozen.periods[0].resource_cost));
  }
  for (const auto& period : moving.periods) {
    moving_spread = std::max(moving_spread,
                             std::abs(period.resource_cost - moving.periods[0].resource_cost));
  }
  EXPECT_NEAR(frozen_spread, 0.0, 1e-12);
  EXPECT_GT(moving_spread, 0.0);
}

TEST(SimulationEngine, InitialOverprovisionScalesStartState) {
  const auto model = geo_model();
  SimulationConfig base_config;
  base_config.periods = 1;
  SimulationConfig scaled_config = base_config;
  scaled_config.initial_overprovision = 3.0;
  // A do-nothing policy exposes the initial state in the period metrics.
  auto idle = [](const linalg::Vector& state, const linalg::Vector&, const linalg::Vector&) {
    return PolicyOutcome{true, linalg::Vector(state.size(), 0.0), state};
  };
  SimulationEngine engine_base(model, geo_demand(), geo_prices(), base_config);
  SimulationEngine engine_scaled(model, geo_demand(), geo_prices(), scaled_config);
  const auto base = engine_base.run(idle);
  const auto scaled = engine_scaled.run(idle);
  EXPECT_NEAR(scaled.periods[0].total_servers, 3.0 * base.periods[0].total_servers,
              1e-6 * scaled.periods[0].total_servers + 1e-6);
}

TEST(SimulationEngine, IntegerizedPolicyAppliesWholeServers) {
  const auto model = geo_model();
  const dspp::PairIndex pairs(model);
  SimulationConfig config;
  config.periods = 8;
  config.noisy_demand = true;
  auto controller = make_mpc(model);
  SimulationEngine engine(model, geo_demand(), geo_prices(), config);
  // Wrap and track every applied state through a spy layer.
  std::vector<linalg::Vector> applied;
  PlacementPolicy inner = policy_from(controller);
  PlacementPolicy integral = integerized(std::move(inner), model, pairs);
  PlacementPolicy spy = [&](const linalg::Vector& state, const linalg::Vector& demand,
                            const linalg::Vector& price) {
    auto outcome = integral(state, demand, price);
    applied.push_back(outcome.next_state);
    return outcome;
  };
  const auto summary = engine.run(spy);
  EXPECT_EQ(summary.unsolved_periods, 0);
  ASSERT_EQ(applied.size(), 8u);
  for (const auto& state : applied) {
    for (double x : state) EXPECT_NEAR(x, std::round(x), 1e-6);
  }
  // Rounding up cannot hurt compliance relative to the continuous run.
  auto controller2 = make_mpc(model);
  SimulationEngine engine2(model, geo_demand(), geo_prices(), config);
  const auto continuous = engine2.run(policy_from(controller2));
  EXPECT_GE(summary.mean_compliance, continuous.mean_compliance - 1e-9);
}

TEST(SimulationEngine, ValidatesConfiguration) {
  const auto model = geo_model();
  SimulationConfig config;
  config.periods = 0;
  EXPECT_THROW(SimulationEngine(model, geo_demand(), geo_prices(), config), PreconditionError);
  config.periods = 4;
  // Mismatched demand model (wrong V).
  EXPECT_THROW(SimulationEngine(model, geo_demand(3), geo_prices(), config),
               PreconditionError);
  // Mismatched price model (wrong L).
  EXPECT_THROW(SimulationEngine(model, geo_demand(), geo_prices(2), config),
               PreconditionError);
}

TEST(SimulationEngine, TimelineMatchesPerPeriodSummary) {
  // The acceptance check behind tools/gp_report: with the timeline armed,
  // the recorded frames alone reproduce the engine's per-period cost
  // trajectory (Fig. 4's raw material) exactly — same doubles, no re-run.
  dspp::DsppModel model = geo_model();
  model.sla.reservation_ratio = 1.3;
  SimulationConfig config;
  config.periods = 24;
  auto controller = make_mpc(model);
  SimulationEngine engine(model, geo_demand(), geo_prices(), config);

  obs::TimelineWriter::set_enabled(true);
  const SimulationSummary summary = engine.run(policy_from(controller));
  obs::TimelineWriter::set_enabled(false);

  const auto frames = obs::TimelineWriter::local().frames();
  ASSERT_EQ(frames.size(), summary.periods.size());
  for (std::size_t k = 0; k < frames.size(); ++k) {
    const PeriodMetrics& period = summary.periods[k];
    EXPECT_DOUBLE_EQ(frames[k].period, static_cast<double>(k));
    EXPECT_EQ(frames[k].utc_hour, period.utc_hour);
    EXPECT_EQ(frames[k].demand_total, period.total_demand);
    EXPECT_EQ(frames[k].servers_total, period.total_servers);
    EXPECT_EQ(frames[k].cost_resource, period.resource_cost);
    EXPECT_EQ(frames[k].cost_reconfig, period.reconfig_cost);
    EXPECT_EQ(frames[k].sla_compliance, period.sla_compliance);
    EXPECT_EQ(frames[k].mean_latency_ms, period.mean_latency_ms);
    EXPECT_EQ(frames[k].unserved_rate, period.unserved_rate);
    EXPECT_EQ(frames[k].solved, period.solved ? 1.0 : 0.0);
    // The MPC step runs at least one ADMM solve per period.
    EXPECT_GE(frames[k].solver_iterations, 1.0);
    EXPECT_GT(frames[k].policy_ms, 0.0);
    EXPECT_GT(frames[k].period_ms, 0.0);
  }
  // Forecast error: -1 sentinel before the first forecast, an actual
  // relative error afterwards (the persistence predictor lags the ramps).
  EXPECT_EQ(frames[0].forecast_rel_err, -1.0);
  EXPECT_GE(frames[1].forecast_rel_err, 0.0);

  // A second run clears the thread ring: frames never accumulate across
  // runs (the sweep relies on this to snapshot per-run sidecars).
  auto controller2 = make_mpc(model);
  SimulationEngine engine2(model, geo_demand(), geo_prices(), config);
  obs::TimelineWriter::set_enabled(true);
  engine2.run(policy_from(controller2));
  obs::TimelineWriter::set_enabled(false);
  EXPECT_EQ(obs::TimelineWriter::local().frames().size(), summary.periods.size());
  obs::TimelineWriter::local().clear();
}

TEST(SimulationEngine, DisabledTimelineRecordsNoFrames) {
  obs::TimelineWriter::local().clear();
  dspp::DsppModel model = geo_model();
  SimulationConfig config;
  config.periods = 6;
  auto controller = make_mpc(model);
  SimulationEngine engine(model, geo_demand(), geo_prices(), config);
  obs::TimelineWriter::set_enabled(false);
  engine.run(policy_from(controller));
  EXPECT_EQ(obs::TimelineWriter::local().size(), 0u);
}

}  // namespace
}  // namespace gp::sim
