// Multi-tenant resource competition (Section VI of the paper): four service
// providers with private SLAs, demands and VM sizes compete for two
// capacity-constrained data centers. Runs the dual-decomposition
// best-response iteration (Algorithm 2) to its Nash equilibrium, prints the
// quota negotiation trace, and compares the equilibrium with the
// social-welfare optimum (Theorem 1 predicts they coincide).
//
//   $ ./multi_tenant_competition
#include <cstdio>

#include "game/competition.hpp"

int main() {
  using namespace gp;

  const topology::NetworkModel network({"dc-a", "dc-b"}, {"an0", "an1", "an2"},
                                       {{12.0, 25.0, 40.0}, {35.0, 18.0, 12.0}});
  Rng rng(99);
  game::RandomProviderParams params;
  params.horizon = 3;
  std::vector<game::ProviderConfig> providers;
  for (int i = 0; i < 4; ++i) {
    providers.push_back(game::make_random_provider(network, params, rng));
    std::printf("provider %d: mu=%.1f req/s, SLA=%.0f ms, server size=%.0f, "
                "demand[t0]=(%.0f, %.0f, %.0f) req/s\n",
                i, providers.back().model.sla.mu, providers.back().model.sla.max_latency_ms,
                providers.back().model.server_size, providers.back().demand[0][0],
                providers.back().demand[0][1], providers.back().demand[0][2]);
  }

  // Capacity tight enough that the quota negotiation matters.
  const linalg::Vector capacity{60.0, 60.0};
  game::GameSettings settings;
  settings.epsilon = 0.01;
  game::CompetitionGame game(std::move(providers), capacity, settings);

  const game::GameResult equilibrium = game.run();
  std::printf("\nAlgorithm 2: %s after %d iterations\n",
              equilibrium.converged ? "converged" : "NOT converged", equilibrium.iterations);
  std::puts("total-cost trace:");
  for (std::size_t it = 0; it < equilibrium.cost_history.size(); ++it) {
    std::printf("  iter %2zu: $%.4f\n", it + 1, equilibrium.cost_history[it]);
  }
  std::puts("\nfinal capacity quotas (servers of capacity per DC):");
  for (std::size_t i = 0; i < equilibrium.quotas.size(); ++i) {
    std::printf("  provider %zu: dc-a %7.2f   dc-b %7.2f   cost $%.4f\n", i,
                equilibrium.quotas[i][0], equilibrium.quotas[i][1],
                equilibrium.provider_costs[i]);
  }

  const game::SocialWelfareResult welfare = game.solve_social_welfare();
  if (!welfare.solved) {
    std::puts("social welfare QP failed");
    return 1;
  }
  const double ratio = game::efficiency_ratio(equilibrium, welfare);
  std::printf("\nequilibrium total cost : $%.4f\n", equilibrium.total_cost);
  std::printf("social optimum (SWP)   : $%.4f\n", welfare.total_cost);
  std::printf("efficiency ratio       : %.4f   (Theorem 1: best NE has ratio 1)\n", ratio);
  std::printf("residual unserved load : %.4f req/s-periods\n", equilibrium.total_unserved);
  return equilibrium.converged ? 0 : 1;
}
