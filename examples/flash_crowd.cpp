// Flash-crowd stress test: Section III of the paper notes that demand can
// "behave in an unexpectedly manner, e.g., flash-crowd effect". This example
// injects a 5x demand spike at one access network and compares two MPC
// configurations: a lean one (no cushion) and one using the paper's
// reservation-ratio over-provisioning. It prints the minute-by-minute SLA
// compliance around the spike.
//
//   $ ./flash_crowd
#include <cstdio>

#include "scenario/policy.hpp"
#include "scenario/registry.hpp"

namespace {

gp::sim::SimulationSummary run_with_reservation(double reservation) {
  using namespace gp;
  // The flash_crowd preset: 2 DCs x 4 cities with a 5x spike at New York
  // (index 0) from 10:00 to 13:00 UTC; the cushion is the compared knob.
  auto spec = scenario::preset("flash_crowd");
  spec.reservation_ratio = reservation;
  const auto bundle = scenario::build(spec);

  scenario::PolicySpec policy;
  policy.horizon = 3;
  policy.demand_predictor.kind = "ar";
  policy.demand_predictor.window = 24;
  policy.price_predictor.kind = "last";
  const auto handle = scenario::make_policy(bundle, spec, policy);

  auto engine = scenario::make_engine(bundle, spec);
  return engine.run(handle.policy());
}

}  // namespace

int main() {
  const auto lean = run_with_reservation(1.0);
  const auto cushioned = run_with_reservation(1.3);

  std::printf("%-6s | %12s %8s %10s | %12s %8s %10s\n", "hour", "lean SLA%", "x(tot)",
              "cost[$]", "cushion SLA%", "x(tot)", "cost[$]");
  for (std::size_t k = 0; k < lean.periods.size(); ++k) {
    const auto& a = lean.periods[k];
    const auto& b = cushioned.periods[k];
    const char* marker = (a.utc_hour >= 10.0 && a.utc_hour < 13.0) ? "  <- flash crowd" : "";
    std::printf("%-6.0f | %12.1f %8.1f %10.4f | %12.1f %8.1f %10.4f%s\n", a.utc_hour,
                100.0 * a.sla_compliance, a.total_servers, a.resource_cost,
                100.0 * b.sla_compliance, b.total_servers, b.resource_cost, marker);
  }
  std::printf("\nlean:      total $%.2f, mean SLA %.1f%%, worst period %.1f%%\n",
              lean.total_cost, 100.0 * lean.mean_compliance, 100.0 * lean.worst_compliance);
  std::printf("cushioned: total $%.2f, mean SLA %.1f%%, worst period %.1f%%\n",
              cushioned.total_cost, 100.0 * cushioned.mean_compliance,
              100.0 * cushioned.worst_compliance);
  std::puts("\nThe reservation ratio buys SLA robustness during the spike onset at a");
  std::puts("proportional increase in steady-state cost — the trade-off of Section IV-B.");
  return 0;
}
