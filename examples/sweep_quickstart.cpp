// The three-line experiment: pick presets from the registry, describe the
// policies, hand the grid to SweepRunner. The runner expands
// (scenario x policy x seed), fans the runs across the thread pool, and
// aggregates per-cell statistics — bit-identical at any GEOPLACE_THREADS.
//
//   $ ./sweep_quickstart            # JSONL per run on stdout, CSV table after
#include <cstdio>
#include <iostream>

#include "scenario/sweep.hpp"

int main() {
  using namespace gp;

  // The advertised three lines: a grid of two presets x two controllers,
  // five Monte-Carlo seeds per cell, run in parallel.
  scenario::SweepGrid grid;
  grid.scenarios = {scenario::preset("ablation_small"), scenario::preset("flash_crowd")};
  grid.policies = {scenario::PolicySpec{},  // the MPC defaults (horizon 5, last/last)
                   [] {
                     scenario::PolicySpec reactive;
                     reactive.kind = "reactive";
                     return reactive;
                   }()};
  grid.num_seeds = 5;
  grid.base_seed = 7;

  const auto result = scenario::SweepRunner(grid).run();

  std::printf("# one JSON object per run (%zu runs, %.1f runs/s):\n",
              result.runs.size(), result.runs_per_s);
  result.write_jsonl(std::cout);

  std::printf("\n# per-(scenario, policy) aggregates over the seed axis:\n");
  result.write_csv(std::cout);

  // A sweep is healthy when every grid point solved every period.
  long long unsolved = 0;
  for (const auto& cell : result.cells) unsolved += cell.unsolved_periods;
  std::printf("\n%s\n", unsolved == 0 ? "all periods solved" : "UNSOLVED periods present");
  return unsolved == 0 ? 0 : 1;
}
