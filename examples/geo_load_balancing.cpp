// Geographic load balancing over the paper's full evaluation setup: the
// four named data centers (San Jose / Houston / Atlanta / Chicago), the 24
// major-US-city access networks, population-scaled diurnal demand, and
// regional electricity prices. Runs one simulated day under the MPC
// controller and prints an hourly table showing how allocation follows the
// cheap regions (the mechanism behind the paper's Fig. 5).
//
//   $ ./geo_load_balancing
#include <cstdio>

#include "scenario/policy.hpp"
#include "scenario/registry.hpp"

int main() {
  using namespace gp;

  // The registry's full Section VII environment, with a slightly larger
  // reservation cushion and a tight 32 ms SLA so the price-driven shifts
  // happen inside latency-feasible subsets instead of everything collapsing
  // into the cheapest region.
  auto spec = scenario::preset("paper_full");
  spec.reservation_ratio = 1.15;
  const auto bundle = scenario::build(spec);

  scenario::PolicySpec policy;
  policy.horizon = 6;
  policy.demand_predictor.kind = "seasonal";
  policy.price_predictor.kind = "seasonal";
  const auto handle = scenario::make_policy(bundle, spec, policy);

  auto engine = scenario::make_engine(bundle, spec);
  const auto summary = engine.run(handle.policy());

  const auto& sites = bundle.sites;
  std::printf("%-6s %10s | %10s %10s %10s %10s | %10s %6s\n", "hour", "demand",
              sites[0].name.c_str(), sites[1].name.c_str(), sites[2].name.c_str(),
              sites[3].name.c_str(), "cost[$]", "SLA%");
  for (const auto& period : summary.periods) {
    std::printf("%-6.0f %10.0f | %10.1f %10.1f %10.1f %10.1f | %10.4f %6.1f\n",
                period.utc_hour, period.total_demand, period.servers_per_dc[0],
                period.servers_per_dc[1], period.servers_per_dc[2], period.servers_per_dc[3],
                period.resource_cost + period.reconfig_cost, 100.0 * period.sla_compliance);
  }
  std::printf("\nTotals: resource $%.2f + reconfiguration $%.4f = $%.2f, "
              "mean SLA compliance %.1f%%, churn %.1f server-moves\n",
              summary.total_resource_cost, summary.total_reconfig_cost, summary.total_cost,
              100.0 * summary.mean_compliance, summary.total_churn);
  std::puts("Note how the San Jose share dips during the California evening price");
  std::puts("peak while Houston (cheap ERCOT power) picks up load.");
  return summary.unsolved_periods == 0 ? 0 : 1;
}
