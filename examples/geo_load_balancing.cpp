// Geographic load balancing over the paper's full evaluation setup: the
// four named data centers (San Jose / Houston / Atlanta / Chicago), the 24
// major-US-city access networks, population-scaled diurnal demand, and
// regional electricity prices. Runs one simulated day under the MPC
// controller and prints an hourly table showing how allocation follows the
// cheap regions (the mechanism behind the paper's Fig. 5).
//
//   $ ./geo_load_balancing
#include <cstdio>
#include <memory>

#include "sim/engine.hpp"

int main() {
  using namespace gp;

  const auto sites = topology::default_datacenter_sites(4);
  const auto& cities = topology::us_cities24();

  dspp::DsppModel model;
  model.network = topology::NetworkModel::from_geography(sites, cities);
  model.sla.mu = 100.0;
  // Tight enough that serving a coastal city from a distant data center
  // costs visibly more servers (smaller queueing budget -> larger a_lv), so
  // the price-driven shifts happen inside latency-feasible subsets instead
  // of everything collapsing into the cheapest region.
  model.sla.max_latency_ms = 32.0;
  model.sla.reservation_ratio = 1.15;
  model.reconfig_cost.assign(4, 0.002);
  model.capacity.assign(4, 2000.0);  // the paper's per-DC capacity

  const auto demand =
      workload::DemandModel::from_cities(cities, 2e-5, workload::DiurnalProfile());
  const workload::ServerPriceModel prices(sites, workload::VmType::kMedium,
                                          workload::ElectricityPriceModel());

  control::MpcSettings settings;
  settings.horizon = 6;
  control::MpcController controller(model, settings,
                                    std::make_unique<control::SeasonalNaivePredictor>(24),
                                    std::make_unique<control::SeasonalNaivePredictor>(24));

  sim::SimulationConfig config;
  config.periods = 48;  // two days: the second day has seasonal history
  config.noisy_demand = true;
  config.seed = 2026;

  sim::SimulationEngine engine(model, demand, prices, config);
  const auto summary = engine.run(sim::policy_from(controller));

  std::printf("%-6s %10s | %10s %10s %10s %10s | %10s %6s\n", "hour", "demand",
              sites[0].name.c_str(), sites[1].name.c_str(), sites[2].name.c_str(),
              sites[3].name.c_str(), "cost[$]", "SLA%");
  for (const auto& period : summary.periods) {
    std::printf("%-6.0f %10.0f | %10.1f %10.1f %10.1f %10.1f | %10.4f %6.1f\n",
                period.utc_hour, period.total_demand, period.servers_per_dc[0],
                period.servers_per_dc[1], period.servers_per_dc[2], period.servers_per_dc[3],
                period.resource_cost + period.reconfig_cost, 100.0 * period.sla_compliance);
  }
  std::printf("\nTotals: resource $%.2f + reconfiguration $%.4f = $%.2f, "
              "mean SLA compliance %.1f%%, churn %.1f server-moves\n",
              summary.total_resource_cost, summary.total_reconfig_cost, summary.total_cost,
              100.0 * summary.mean_compliance, summary.total_churn);
  std::puts("Note how the San Jose share dips during the California evening price");
  std::puts("peak while Houston (cheap ERCOT power) picks up load.");
  return summary.unsolved_periods == 0 ? 0 : 1;
}
