// Quickstart: the smallest end-to-end use of the geoplace public API.
//
// Builds a two-data-center / one-city model, wires up an MPC controller
// with a persistence predictor, and walks it through a demand ramp,
// printing the allocation it chooses each period.
//
//   $ ./quickstart
#include <cstdio>
#include <memory>

#include "control/mpc_controller.hpp"
#include "scenario/policy.hpp"
#include "dspp/assignment.hpp"

int main() {
  using namespace gp;

  // --- 1. Describe the environment: latencies, SLA, costs, capacity. ---
  dspp::DsppModel model;
  model.network = topology::NetworkModel(
      {"dc-west", "dc-east"}, {"customers"},
      {{20.0},    // dc-west <-> customers: 20 ms
       {45.0}});  // dc-east <-> customers: 45 ms
  model.sla.mu = 100.0;             // each server handles 100 req/s
  model.sla.max_latency_ms = 80.0;  // end-to-end SLA target
  model.reconfig_cost = {0.02, 0.02};
  model.capacity = {500.0, 500.0};

  // --- 2. Build the controller (Algorithm 1 of the paper). ---
  control::MpcSettings settings;
  settings.horizon = 4;  // look 4 periods ahead
  control::MpcController controller(model, settings,
                                    scenario::make_predictor("last"),
                                    scenario::make_predictor("last"));
  const auto& pairs = controller.pairs();

  // --- 3. Drive it with a demand ramp and region-dependent prices. ---
  const linalg::Vector price{0.09, 0.05};  // $/server/period: east is cheaper
  linalg::Vector state = controller.provision_for({300.0}, price);

  std::printf("%-8s %12s %14s %14s %12s\n", "period", "demand", "x(dc-west)",
              "x(dc-east)", "cost[$]");
  for (int k = 0; k < 10; ++k) {
    const double demand = 300.0 + 60.0 * k;  // ramping load
    const auto result = controller.step(state, {demand}, price);
    if (!result.solved) {
      std::printf("period %d: solver status %s\n", k, qp::to_string(result.status).c_str());
      return 1;
    }
    state = result.next_state;

    // Ask the request-router policy (eq. 13) how demand would be split.
    const auto assignment = dspp::assign_demand(pairs, state, {demand});
    const auto report = dspp::evaluate_sla(model, pairs, state, assignment);

    double west = 0.0, east = 0.0, cost = 0.0;
    for (std::size_t p = 0; p < pairs.num_pairs(); ++p) {
      (pairs.datacenter_of(p) == 0 ? west : east) += state[p];
      cost += price[pairs.datacenter_of(p)] * state[p];
    }
    std::printf("%-8d %12.1f %14.2f %14.2f %12.4f   (mean latency %.1f ms)\n", k, demand,
                west, east, cost, report.mean_latency_ms);
  }
  std::puts("\nThe cheaper east data center carries the load; the west one");
  std::puts("is used only when its lower latency is needed by the SLA.");
  return 0;
}
