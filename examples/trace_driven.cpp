// Trace-driven operation: run the controller from CSV traces instead of the
// synthetic generators, and on a topology loaded from a Rocketfuel-format
// ISP map — the workflow for replaying measured production data.
//
// The example writes a demand trace to a string (stand-in for a file),
// loads it back, loads the bundled ISP backbone, augments it with access
// networks (the paper's GT-ITM procedure), and drives the MPC controller
// directly from the loaded trace.
//
//   $ ./trace_driven
#include <cstdio>
#include <sstream>

#include "control/mpc_controller.hpp"
#include "scenario/policy.hpp"
#include "scenario/registry.hpp"
#include "scenario/trace.hpp"
#include "sim/engine.hpp"
#include "topology/isp_map.hpp"
#include "topology/network.hpp"

int main() {
  using namespace gp;

  // --- 1. Topology from an ISP map file (Rocketfuel weights format). ---
  std::istringstream map_file(topology::example_backbone_text());
  const auto parsed = topology::load_isp_map(map_file);
  if (!parsed.ok) {
    std::printf("failed to parse ISP map: %s\n", parsed.error.c_str());
    return 1;
  }
  std::printf("loaded backbone: %d PoPs, %ld links\n", parsed.map.graph.num_nodes(),
              static_cast<long>(parsed.map.graph.num_edges()));
  Rng rng(11);
  const auto topo = topology::augment_with_access_networks(parsed.map, 2, 3, rng);
  const auto network = topology::NetworkModel::from_transit_stub(topo, 3, 4, rng);

  // --- 2. Demand trace. Any CSV path works ("builtin:demo" resolves to
  // the embedded demo trace the trace_driven preset uses). ---
  const workload::Trace trace = scenario::load_spec_trace(scenario::kBuiltinDemoTrace);
  std::printf("loaded demand trace: %zu periods x %zu access networks\n\n",
              trace.periods(), trace.width());

  // --- 3. Controller driven straight from the trace. ---
  dspp::DsppModel model;
  model.network = network;
  model.sla.mu = 100.0;
  model.sla.max_latency_ms = 120.0;
  model.reconfig_cost.assign(3, 0.02);
  model.capacity.assign(3, 2000.0);

  control::MpcSettings settings;
  settings.horizon = 3;
  scenario::PredictorSpec oracle;
  oracle.kind = "oracle";
  oracle.oracle_wrap = false;  // a measured trace ends; don't replay it cyclically
  control::MpcController controller(model, settings,
                                    scenario::make_predictor(oracle, trace.values),
                                    scenario::make_predictor("last"));

  const linalg::Vector price{0.06, 0.04, 0.05};
  linalg::Vector state = controller.provision_for(trace.values.front(), price);
  std::printf("%-8s %12s %14s %12s\n", "period", "demand", "servers", "cost[$]");
  for (std::size_t k = 0; k < trace.periods(); ++k) {
    const auto result = controller.step(state, trace.values[k], price);
    if (!result.solved) {
      std::printf("period %zu: %s\n", k, qp::to_string(result.status).c_str());
      return 1;
    }
    state = result.next_state;
    double total_demand = 0.0, total_servers = 0.0, cost = 0.0;
    for (double d : trace.values[k]) total_demand += d;
    for (std::size_t p = 0; p < controller.pairs().num_pairs(); ++p) {
      total_servers += state[p];
      cost += price[controller.pairs().datacenter_of(p)] * state[p];
    }
    std::printf("%-8zu %12.0f %14.2f %12.4f\n", k, total_demand, total_servers, cost);
  }

  // --- 4. The same trace as a registry preset: the full simulation path
  // (ScenarioSpec::demand_trace_csv -> DemandModel::from_trace). ---
  const scenario::ScenarioSpec spec = scenario::preset("trace_driven");
  const scenario::ScenarioBundle bundle = scenario::build(spec);
  scenario::PolicyHandle policy = scenario::make_policy(bundle, spec, {});
  sim::SimulationEngine engine = scenario::make_engine(bundle, spec);
  const sim::SimulationSummary summary = engine.run(policy.policy());
  std::printf("\ntrace_driven preset: %zu periods, total cost $%.2f, "
              "mean compliance %.3f\n",
              summary.periods.size(), summary.total_cost, summary.mean_compliance);
  std::puts("Point ScenarioSpec::demand_trace_csv at a CSV file to replay real traces.");
  return summary.unsolved_periods == 0 ? 0 : 1;
}
