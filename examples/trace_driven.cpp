// Trace-driven operation: run the controller from CSV traces instead of the
// synthetic generators, and on a topology loaded from a Rocketfuel-format
// ISP map — the workflow for replaying measured production data.
//
// The example writes a demand trace to a string (stand-in for a file),
// loads it back, loads the bundled ISP backbone, augments it with access
// networks (the paper's GT-ITM procedure), and drives the MPC controller
// directly from the loaded trace.
//
//   $ ./trace_driven
#include <cstdio>
#include <sstream>

#include "control/mpc_controller.hpp"
#include "scenario/policy.hpp"
#include "topology/isp_map.hpp"
#include "topology/network.hpp"
#include "workload/trace_io.hpp"

int main() {
  using namespace gp;

  // --- 1. Topology from an ISP map file (Rocketfuel weights format). ---
  std::istringstream map_file(topology::example_backbone_text());
  const auto parsed = topology::load_isp_map(map_file);
  if (!parsed.ok) {
    std::printf("failed to parse ISP map: %s\n", parsed.error.c_str());
    return 1;
  }
  std::printf("loaded backbone: %d PoPs, %ld links\n", parsed.map.graph.num_nodes(),
              static_cast<long>(parsed.map.graph.num_edges()));
  Rng rng(11);
  const auto topo = topology::augment_with_access_networks(parsed.map, 2, 3, rng);
  const auto network = topology::NetworkModel::from_transit_stub(topo, 3, 4, rng);

  // --- 2. Demand trace: normally load_trace_csv(file); here, embedded. ---
  const char* kTrace =
      "# requests/s per access network, one row per 30-minute period\n"
      "an0,an1,an2,an3\n"
      "220,150,90,60\n"
      "260,180,110,75\n"
      "340,230,140,90\n"
      "420,300,180,120\n"
      "460,330,200,130\n"
      "450,320,195,125\n"
      "380,260,160,105\n"
      "290,200,120,80\n";
  std::istringstream trace_file(kTrace);
  const auto loaded = workload::load_trace_csv(trace_file);
  if (!loaded.ok) {
    std::printf("failed to parse trace: %s\n", loaded.error.c_str());
    return 1;
  }
  std::printf("loaded demand trace: %zu periods x %zu access networks\n\n",
              loaded.trace.periods(), loaded.trace.width());

  // --- 3. Controller driven straight from the trace. ---
  dspp::DsppModel model;
  model.network = network;
  model.sla.mu = 100.0;
  model.sla.max_latency_ms = 120.0;
  model.reconfig_cost.assign(3, 0.02);
  model.capacity.assign(3, 2000.0);

  control::MpcSettings settings;
  settings.horizon = 3;
  scenario::PredictorSpec oracle;
  oracle.kind = "oracle";
  oracle.oracle_wrap = false;  // a measured trace ends; don't replay it cyclically
  control::MpcController controller(model, settings,
                                    scenario::make_predictor(oracle, loaded.trace.values),
                                    scenario::make_predictor("last"));

  const linalg::Vector price{0.06, 0.04, 0.05};
  linalg::Vector state = controller.provision_for(loaded.trace.values.front(), price);
  std::printf("%-8s %12s %14s %12s\n", "period", "demand", "servers", "cost[$]");
  for (std::size_t k = 0; k < loaded.trace.periods(); ++k) {
    const auto result = controller.step(state, loaded.trace.values[k], price);
    if (!result.solved) {
      std::printf("period %zu: %s\n", k, qp::to_string(result.status).c_str());
      return 1;
    }
    state = result.next_state;
    double total_demand = 0.0, total_servers = 0.0, cost = 0.0;
    for (double d : loaded.trace.values[k]) total_demand += d;
    for (std::size_t p = 0; p < controller.pairs().num_pairs(); ++p) {
      total_servers += state[p];
      cost += price[controller.pairs().datacenter_of(p)] * state[p];
    }
    std::printf("%-8zu %12.0f %14.2f %12.4f\n", k, total_demand, total_servers, cost);
  }
  std::puts("\nSwap the embedded strings for std::ifstream to replay real traces.");
  return 0;
}
