// Dynamic multi-tenant competition: the full Section VI system over a
// simulated day. Three service providers with different time-zone demand
// profiles and VM sizes share two capacity-constrained data centers; every
// hour each provider forecasts its window and the platform renegotiates
// capacity quotas (Algorithm 2), warm-starting from the previous
// equilibrium. Prints per-hour tenant allocations and the negotiation
// effort.
//
//   $ ./dynamic_competition
#include <cstdio>

#include "scenario/policy.hpp"
#include "sim/multi_provider.hpp"

namespace {

gp::sim::TenantConfig make_tenant(const gp::topology::NetworkModel& network, double base_rate,
                                  double server_size, int utc_offset, double reconfig) {
  using namespace gp;
  dspp::DsppModel model;
  model.network = network;
  model.sla.mu = 100.0;
  model.sla.max_latency_ms = 100.0;
  model.reconfig_cost = {reconfig, reconfig};
  model.capacity = {1e12, 1e12};  // the shared quotas govern capacity
  model.server_size = server_size;
  return sim::TenantConfig{
      std::move(model),
      workload::DemandModel(
          {{base_rate, utc_offset, workload::DiurnalProfile()},
           {base_rate * 0.7, utc_offset, workload::DiurnalProfile()}}),
      [] {
        gp::scenario::PredictorSpec ar;
        ar.kind = "ar";
        ar.window = 24;
        return gp::scenario::make_predictor(ar);
      }()};
}

}  // namespace

int main() {
  using namespace gp;

  const topology::NetworkModel network({"dc-east", "dc-west"}, {"an-east", "an-west"},
                                       {{12.0, 35.0}, {32.0, 14.0}});
  std::vector<sim::TenantConfig> tenants;
  tenants.push_back(make_tenant(network, 500.0, 1.0, -5, 0.05));  // east-coast web tier
  tenants.push_back(make_tenant(network, 350.0, 2.0, -8, 0.02));  // west-coast, fat VMs
  tenants.push_back(make_tenant(network, 250.0, 1.0, -6, 0.10));  // central, sticky state

  const workload::ServerPriceModel prices(topology::default_datacenter_sites(2),
                                          workload::VmType::kMedium,
                                          workload::ElectricityPriceModel());

  sim::MultiTenantConfig config;
  config.periods = 24;
  config.horizon = 3;
  config.noisy_demand = true;
  config.seed = 7;
  config.game.epsilon = 0.02;
  // Tight enough that quotas bind during overlapping busy hours.
  sim::MultiTenantSimulation simulation(std::move(tenants), prices, {28.0, 28.0}, config);
  const auto summary = simulation.run();

  std::printf("%-5s | %9s %9s %9s | %10s %10s | %6s %5s\n", "hour", "T0 units", "T1 units",
              "T2 units", "unserved", "cost[$]", "iters", "conv");
  for (std::size_t k = 0; k < config.periods; ++k) {
    double unserved = 0.0, cost = 0.0;
    for (std::size_t i = 0; i < summary.tenants.size(); ++i) {
      unserved += summary.tenants[i][k].unserved;
      cost += summary.tenants[i][k].cost;
    }
    std::printf("%-5zu | %9.2f %9.2f %9.2f | %10.2f %10.4f | %6d %5s\n", k,
                summary.tenants[0][k].servers, summary.tenants[1][k].servers,
                summary.tenants[2][k].servers, unserved, cost, summary.game_iterations[k],
                summary.game_converged[k] ? "yes" : "NO");
  }
  std::printf("\nper-tenant totals: $%.4f / $%.4f / $%.4f,  total unserved %.2f req/s-periods\n",
              summary.tenant_total_costs[0], summary.tenant_total_costs[1],
              summary.tenant_total_costs[2], summary.total_unserved);
  std::puts("Note how negotiation effort (iters) spikes when busy hours collide across");
  std::puts("time zones and settles to the floor once warm-started quotas stabilize.");
  return 0;
}
