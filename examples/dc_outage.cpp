// Failure injection: a data-center outage in the middle of the day.
//
// The controller's capacity-quota hook (the same mechanism the competition
// game uses) doubles as an operational lever: when a data center goes dark,
// operations sets its usable capacity to ~zero and the MPC controller
// migrates load to the surviving sites on the next control period — paying
// the reconfiguration cost the paper's objective makes explicit — then
// migrates back when the site recovers.
//
//   $ ./dc_outage
#include <cmath>
#include <cstdio>

#include "dspp/assignment.hpp"
#include "scenario/policy.hpp"
#include "scenario/registry.hpp"

int main() {
  using namespace gp;

  // 3 DCs x 6 cities (the dc_outage preset); the loop below throttles the
  // Houston site's quota mid-day.
  const auto spec = scenario::preset("dc_outage");
  const auto bundle = scenario::build(spec);

  scenario::PolicySpec policy;
  policy.horizon = 3;
  policy.soft_demand_penalty = 5.0;  // an outage can make hard demand infeasible
  policy.demand_predictor.kind = "last";
  policy.price_predictor.kind = "last";
  auto handle = scenario::make_policy(bundle, spec, policy);
  control::MpcController& controller = *handle.mpc();
  const auto& pairs = controller.pairs();
  const auto& model = bundle.model;
  const auto& sites = bundle.sites;

  constexpr double kOutageStart = 11.0, kOutageEnd = 15.0;  // UTC hours
  constexpr std::size_t kFailedDc = 1;                      // Houston (usually cheapest)

  linalg::Vector state = controller.provision_for(bundle.demand.mean_rates(0.5),
                                                  bundle.prices.server_prices(0.5));
  std::printf("%-5s | %10s %10s %10s | %8s %9s %s\n", "hour", sites[0].name.c_str(),
              sites[1].name.c_str(), sites[2].name.c_str(), "SLA%", "churn", "");
  double total_migration = 0.0;
  for (int hour = 0; hour < 24; ++hour) {
    const bool outage = hour >= kOutageStart && hour < kOutageEnd;
    if (outage) {
      linalg::Vector quota(model.capacity.begin(), model.capacity.end());
      quota[kFailedDc] = 1e-3;  // site effectively offline
      controller.set_capacity_quota(quota);
    } else {
      controller.set_capacity_quota(std::nullopt);
    }
    const auto demand_now = bundle.demand.mean_rates(hour + 0.5);
    const auto price_now = bundle.prices.server_prices(hour + 0.5);
    const auto result = controller.step(state, demand_now, price_now);
    if (!result.solved) {
      std::printf("hour %d: solver status %s\n", hour, qp::to_string(result.status).c_str());
      return 1;
    }
    double churn = 0.0;
    for (double u : result.control) churn += std::abs(u);
    total_migration += churn;
    state = result.next_state;

    const auto next_demand = bundle.demand.mean_rates(hour + 1.5);
    const auto assignment = dspp::assign_demand(pairs, state, next_demand);
    const auto report = dspp::evaluate_sla(model, pairs, state, assignment);
    linalg::Vector per_dc(3, 0.0);
    for (std::size_t p = 0; p < pairs.num_pairs(); ++p) {
      per_dc[pairs.datacenter_of(p)] += state[p];
    }
    std::printf("%-5d | %10.2f %10.2f %10.2f | %8.1f %9.2f %s\n", hour, per_dc[0], per_dc[1],
                per_dc[2], 100.0 * report.compliance(), churn,
                outage ? "<- OUTAGE" : "");
  }
  std::printf("\ntotal migration over the day: %.1f server-moves\n", total_migration);
  std::puts("The failed site's load migrates to the survivors over a couple of");
  std::puts("control periods (the quadratic penalty rations the migration rate, so");
  std::puts("SLA compliance dips while the outage overlaps the morning ramp) and");
  std::puts("returns once the site recovers. Raising the reservation ratio or");
  std::puts("lowering c^l trades money for faster recovery.");
  return 0;
}
